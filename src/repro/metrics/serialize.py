"""JSON-serializable schema for experiment results.

The parallel grid runner streams one JSON document per grid cell to disk so
that interrupted sweeps can resume and downstream tooling (reports, plots,
regression diffs) can consume results without importing the engine.  This
module owns the schema: converting :class:`ExperimentConfig` /
:class:`ExperimentResult` to plain JSON-safe dictionaries, and the
mean/stddev aggregation applied across seeds.

``RESULT_SCHEMA_VERSION`` is bumped on every incompatible change; the runner
re-computes (instead of reusing) checkpoint files written under a different
version.
"""

from __future__ import annotations

import math
from dataclasses import fields
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.experiments.config import ChurnSpec, ExperimentConfig, QueryChurnSpec
from repro.experiments.runner import ExperimentResult
from repro.sql.ast import WindowSpec

#: v8: the observability layer added the latency/load histogram percentiles
#: (``answer_latency_p50``/``p95``/``p99`` and friends — three keys per
#: histogram declared in ``repro.obs.instruments.HISTOGRAMS``) to the
#: summary, plus ``ExperimentConfig.observability`` to the config schema.
#: Older result files still *load* — ``result_from_dict``, ``load_cells``
#: and ``report --diff`` accept any schema version.
#: (v7: the transport extraction added ``ExperimentConfig.runtime``
#: (``sim`` / ``asyncio``) to the config schema;
#: v6: million-query matching added the trigger-path counters
#: (``queries_triggered``, ``trigger_candidates_scanned``,
#: ``shared_state_fanout``) to the summary;
#: v5: the metrics-summary key set became *declared* (:data:`SUMMARY_SCHEMA`)
#: and machine-checked against ``RJoinEngine.metrics_summary`` by the static
#: analysis suite (``python -m repro.analysis check``, rule
#: ``metrics-registry``) — adding or removing a summary counter without
#: updating the declaration fails lint instead of shipping silent drift;
#: v4: query lifecycle added ``ExperimentConfig.query_churn`` /
#: ``ExperimentConfig.owner_failover`` plus the lifecycle counters;
#: v3: ``ExperimentConfig.store_backend`` joined the config schema.)
RESULT_SCHEMA_VERSION = 8

#: The declared key set of ``RJoinEngine.metrics_summary`` — the flat
#: per-run metric dictionary embedded in every result cell (``summary`` /
#: ``baseline`` / ``warmup_baseline`` fields and checkpoint snapshots).
#: Keep in lock step with ``core/engine.py``; the ``metrics-registry``
#: analysis rule enforces equality in both directions at lint time, and
#: ``tests/analysis/test_schema_sync.py`` enforces it at runtime.
SUMMARY_SCHEMA: Tuple[str, ...] = (
    "nodes",
    "published_tuples",
    "submitted_queries",
    "active_queries",
    "total_messages",
    "ric_messages",
    "messages_per_node",
    "ric_messages_per_node",
    "total_qpl",
    "qpl_per_node",
    "total_storage",
    "storage_per_node",
    "current_storage",
    "answers",
    "participating_nodes",
    "membership_events",
    "joins",
    "leaves",
    "crashes",
    "records_rehomed",
    "bytes_rehomed",
    "records_lost",
    "bytes_lost",
    "dropped_messages",
    "stale_one_hop_attempts",
    "queries_removed",
    "records_retracted",
    "records_vacuumed",
    "orphaned_state_records",
    "failover_reregistrations",
    "replica_repairs",
    "answers_rerouted",
    "queries_triggered",
    "trigger_candidates_scanned",
    "shared_state_fanout",
    # Observability histogram percentiles (three keys per histogram declared
    # in ``repro.obs.instruments.HISTOGRAMS``; all zero when observability
    # is off so the key set never depends on the mode).
    "answer_latency_p50",
    "answer_latency_p95",
    "answer_latency_p99",
    "hop_delay_p50",
    "hop_delay_p95",
    "hop_delay_p99",
    "handler_service_time_us_p50",
    "handler_service_time_us_p95",
    "handler_service_time_us_p99",
    "inbox_depth_p50",
    "inbox_depth_p95",
    "inbox_depth_p99",
    "store_probe_batch_p50",
    "store_probe_batch_p95",
    "store_probe_batch_p99",
)


# ---------------------------------------------------------------------------
# configs
# ---------------------------------------------------------------------------
def window_to_dict(window: Optional[WindowSpec]) -> Optional[Dict[str, object]]:
    """A JSON-safe rendering of a window specification."""
    if window is None:
        return None
    return {"size": float(window.size), "mode": window.mode}


def window_from_dict(data: Optional[Mapping[str, object]]) -> Optional[WindowSpec]:
    """Rebuild a :class:`WindowSpec` from :func:`window_to_dict` output."""
    if data is None:
        return None
    return WindowSpec(size=float(data["size"]), mode=str(data["mode"]))


def churn_to_dict(churn: Optional[ChurnSpec]) -> Optional[Dict[str, object]]:
    """A JSON-safe rendering of a membership-churn schedule."""
    if churn is None:
        return None
    return {
        spec_field.name: getattr(churn, spec_field.name)
        for spec_field in fields(churn)
    }


def churn_from_dict(data: Optional[Mapping[str, object]]) -> Optional[ChurnSpec]:
    """Rebuild a :class:`ChurnSpec` from :func:`churn_to_dict` output."""
    if data is None:
        return None
    known = {spec_field.name for spec_field in fields(ChurnSpec)}
    return ChurnSpec(**{key: value for key, value in data.items() if key in known})


def query_churn_to_dict(
    spec: Optional[QueryChurnSpec],
) -> Optional[Dict[str, object]]:
    """A JSON-safe rendering of a query-lifecycle churn schedule."""
    if spec is None:
        return None
    return {
        spec_field.name: getattr(spec, spec_field.name)
        for spec_field in fields(spec)
    }


def query_churn_from_dict(
    data: Optional[Mapping[str, object]],
) -> Optional[QueryChurnSpec]:
    """Rebuild a :class:`QueryChurnSpec` from :func:`query_churn_to_dict` output."""
    if data is None:
        return None
    known = {spec_field.name for spec_field in fields(QueryChurnSpec)}
    return QueryChurnSpec(
        **{key: value for key, value in data.items() if key in known}
    )


def config_to_dict(config: ExperimentConfig) -> Dict[str, object]:
    """A JSON-safe rendering of an experiment configuration."""
    data: Dict[str, object] = {}
    for spec_field in fields(config):
        value = getattr(config, spec_field.name)
        if isinstance(value, WindowSpec):
            value = window_to_dict(value)
        elif isinstance(value, ChurnSpec):
            value = churn_to_dict(value)
        elif isinstance(value, QueryChurnSpec):
            value = query_churn_to_dict(value)
        elif isinstance(value, tuple):
            value = list(value)
        data[spec_field.name] = value
    return data


def config_from_dict(data: Mapping[str, object]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict` output."""
    known = {spec_field.name for spec_field in fields(ExperimentConfig)}
    kwargs = {key: value for key, value in data.items() if key in known}
    if kwargs.get("window") is not None:
        kwargs["window"] = window_from_dict(kwargs["window"])  # type: ignore[arg-type]
    if kwargs.get("churn") is not None:
        kwargs["churn"] = churn_from_dict(kwargs["churn"])  # type: ignore[arg-type]
    if kwargs.get("query_churn") is not None:
        kwargs["query_churn"] = query_churn_from_dict(
            kwargs["query_churn"]  # type: ignore[arg-type]
        )
    return ExperimentConfig(**kwargs)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
def result_to_dict(result: ExperimentResult) -> Dict[str, object]:
    """Serialize everything a report needs from one experiment run.

    Checkpoint keys become strings (JSON objects cannot have integer keys);
    :func:`result_from_dict` restores them.
    """
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "config": config_to_dict(result.config),
        "summary": dict(result.summary),
        "baseline": dict(result.baseline),
        "warmup_baseline": dict(result.warmup_baseline),
        "messages_total": int(result.messages_total),
        "ric_messages_total": int(result.ric_messages_total),
        "messages_tuple_phase": int(result.messages_tuple_phase),
        "ric_messages_tuple_phase": int(result.ric_messages_tuple_phase),
        "ranked_qpl": [int(v) for v in result.ranked_qpl],
        "ranked_storage": [int(v) for v in result.ranked_storage],
        "ranked_storage_current": [int(v) for v in result.ranked_storage_current],
        "ranked_traffic": [int(v) for v in result.ranked_traffic],
        "checkpoints": {
            str(index): dict(snapshot)
            for index, snapshot in result.checkpoints.items()
        },
        "cumulative_qpl": [int(v) for v in result.cumulative_qpl],
        "cumulative_storage": [int(v) for v in result.cumulative_storage],
        "answers": int(result.answers),
        # Derived per-figure quantities, precomputed so that reports never
        # need the ExperimentResult class.
        "derived": {
            "messages_per_node": result.messages_per_node,
            "ric_messages_per_node": result.ric_messages_per_node,
            "messages_per_node_per_tuple": result.messages_per_node_per_tuple,
            "ric_messages_per_node_per_tuple": result.ric_messages_per_node_per_tuple,
            "qpl_per_node": result.qpl_per_node,
            "storage_per_node": result.storage_per_node,
            "participating_nodes": float(result.participating_nodes),
            "max_qpl": float(result.max_qpl),
            "max_storage": float(result.max_storage),
        },
    }


def result_from_dict(data: Mapping[str, object]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` output."""
    return ExperimentResult(
        config=config_from_dict(data["config"]),  # type: ignore[arg-type]
        summary=dict(data["summary"]),  # type: ignore[arg-type]
        baseline=dict(data.get("baseline", {})),  # type: ignore[arg-type]
        warmup_baseline=dict(data.get("warmup_baseline", {})),  # type: ignore[arg-type]
        messages_total=int(data["messages_total"]),  # type: ignore[arg-type]
        ric_messages_total=int(data["ric_messages_total"]),  # type: ignore[arg-type]
        messages_tuple_phase=int(
            data["messages_tuple_phase"]  # type: ignore[arg-type]
        ),
        ric_messages_tuple_phase=int(
            data["ric_messages_tuple_phase"]  # type: ignore[arg-type]
        ),
        ranked_qpl=list(data.get("ranked_qpl", [])),  # type: ignore[arg-type]
        ranked_storage=list(data.get("ranked_storage", [])),  # type: ignore[arg-type]
        ranked_storage_current=list(
            data.get("ranked_storage_current", [])  # type: ignore[arg-type]
        ),
        ranked_traffic=list(data.get("ranked_traffic", [])),  # type: ignore[arg-type]
        checkpoints={
            int(index): dict(snapshot)
            for index, snapshot in dict(data.get("checkpoints", {})).items()
        },
        cumulative_qpl=list(data.get("cumulative_qpl", [])),  # type: ignore[arg-type]
        cumulative_storage=list(
            data.get("cumulative_storage", [])  # type: ignore[arg-type]
        ),
        answers=int(data.get("answers", 0)),  # type: ignore[arg-type]
    )


# ---------------------------------------------------------------------------
# aggregation across seeds
# ---------------------------------------------------------------------------
def mean_stddev(values: Sequence[float]) -> Dict[str, float]:
    """Mean, population standard deviation, min, max and count of ``values``."""
    values = [float(v) for v in values]
    if not values:
        return {"mean": 0.0, "stddev": 0.0, "min": 0.0, "max": 0.0, "count": 0}
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return {
        "mean": mean,
        "stddev": math.sqrt(variance),
        "min": min(values),
        "max": max(values),
        "count": len(values),
    }


def aggregate_metrics(
    per_seed: Sequence[Mapping[str, float]],
) -> Dict[str, Dict[str, float]]:
    """Mean/stddev per metric across per-seed metric dictionaries.

    Only metrics present in *every* run are aggregated, so a partial cell
    cannot silently dilute a mean.
    """
    if not per_seed:
        return {}
    shared = set(per_seed[0])
    for metrics in per_seed[1:]:
        shared &= set(metrics)
    return {
        name: mean_stddev([metrics[name] for metrics in per_seed])
        for name in sorted(shared)
    }
