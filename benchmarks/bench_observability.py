"""Observability-overhead gate: ``off`` must be free, ``on`` must be bounded.

Runs the identical query-flood workload in three flavours in one process on
the ``sim`` runtime — a *baseline* pass (``observability="off"``), a second
``off`` pass and an ``on`` pass, interleaved over ``REPEATS`` rounds.  Each
round yields one throughput-ratio sample per gate and the gate judges the
*median* ratio across rounds; ``BENCH_observability.json`` records both the
per-round samples and each flavour's best publish-phase throughput:

* ``off`` vs baseline measures the cost of the dormant instrumentation
  (one ``is not None`` check per hook): the two passes run byte-identical
  code, so the ratio must stay within **5%** — and because it is a
  *control* (identical code can only diverge through host noise), a run
  whose control falls outside the band is re-measured up to ``--attempts``
  times and left advisory if the host never quiets down, rather than
  failing CI on scheduler noise,
* ``on`` vs baseline measures the full tracing + histogram layer (a span
  per delivery, the transit instruments, trace-context stamping): the
  ratio must stay within **25%**, enforced only on a measurement whose
  control validated.

Both ratios are measured *within one run on one host*, so the gate is
hardware-independent; the committed copy under ``benchmarks/baselines/``
documents the reference numbers.  Rates are deliberately keyed
``tuples_per_sec`` (not ``*_per_second``) so ``check_regression.py`` never
compares the absolute numbers across machines — the in-run ratios are the
gate.  Every pass must also produce the identical answer bag: observability
must never change behaviour, only report on it.

A gate is only enforced when the baseline timing window is long enough to
be trustworthy (``--min-seconds``, default 0.2 s); below that the ratios
are recorded but advisory — a 5% tolerance is meaningless on millisecond
windows.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py [--smoke]
        [--check] [--output PATH] [--trace-out PATH]

``--check`` exits non-zero when an enforced gate fails (the CI mode);
``--trace-out`` dumps the ``on`` pass's spans as JSONL — CI uploads it as a
sample-trace artifact.
"""

from __future__ import annotations

import argparse
import gc
import json
from pathlib import Path
from statistics import median
from time import perf_counter
from typing import Dict, List, Optional

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_observability.json"

#: Throughput floors relative to the in-run baseline pass.
OFF_FLOOR = 0.95
ON_FLOOR = 0.75

#: Baseline windows shorter than this are recorded but not enforced.
DEFAULT_MIN_SECONDS = 0.2

#: Whole-measurement retries while the off control is outside its band.
DEFAULT_ATTEMPTS = 3

#: Timing rounds; every round runs all three modes back-to-back and yields
#: one ratio sample per gate, and the *median* ratio across rounds is what
#: the gate judges.  Comparing per-mode minima instead turned out to be
#: noise-sensitive on shared hosts: three samples per mode let one mode's
#: minimum catch a quiet window the others never saw, skewing the ratio by
#: more than the 5% tolerance the off gate allows.
REPEATS = 5

#: Pass order within one repeat round: (report name, observability mode).
#: The modes run back-to-back inside every round — interleaved rather than
#: three sequential blocks — so slow time-correlated load drift (CPU
#: frequency scaling, a neighbour container waking up) hits every mode
#: alike instead of biasing whichever block it lands in.
PASSES = (("baseline", "off"), ("off", "off"), ("on", "on"))


def _one_pass(
    mode: str,
    num_nodes: int,
    queries: List[object],
    tuples: List[object],
    generator: WorkloadGenerator,
    trace_out: Optional[Path] = None,
) -> Dict[str, float]:
    """Time one publish phase under ``mode``; returns timing + answer bag."""
    engine = RJoinEngine(RJoinConfig(num_nodes=num_nodes, seed=90, observability=mode))
    engine.register_catalog(generator.catalog)
    handles = [engine.submit(query) for query in queries]
    # GC hygiene, applied identically to every mode: collect the setup
    # garbage, then keep the collector out of the timed window.  Without
    # this, whichever pass a cyclic collection lands in loses ~10% — far
    # more than the 5% tolerance the off gate enforces — and the ratios
    # measure GC scheduling, not instrumentation.
    gc.collect()
    gc.disable()
    start = perf_counter()
    try:
        for generated in tuples:
            engine.publish(generated.relation, generated.values)
        elapsed = perf_counter() - start
    finally:
        gc.enable()
    spans = 0.0
    if mode == "on":
        spans = float(len(engine.obs.spans))
        if trace_out is not None:
            engine.write_trace(str(trace_out))
    answers = sum(handle.count for handle in handles)
    engine.close()
    return {
        "publish_seconds": elapsed,
        "answers": float(answers),
        "spans_recorded": spans,
    }


def _measure(
    num_nodes: int,
    queries: List[object],
    tuples: List[object],
    generator: WorkloadGenerator,
    trace_out: Optional[Path] = None,
) -> Dict[str, object]:
    """Interleaved timing over ``REPEATS`` rounds of every observability mode.

    Each round yields one throughput-ratio sample per gate (the three modes
    inside a round run back-to-back, so whatever the host was doing hit all
    of them alike); the returned ``off_ratios`` / ``on_ratios`` lists carry
    one entry per round and the caller gates on their median.
    """
    results: Dict[str, Dict[str, float]] = {}
    off_ratios: List[float] = []
    on_ratios: List[float] = []
    for repeat in range(REPEATS):
        round_seconds: Dict[str, float] = {}
        for name, mode in PASSES:
            capture = trace_out if name == "on" and repeat == REPEATS - 1 else None
            sample = _one_pass(mode, num_nodes, queries, tuples, generator, capture)
            round_seconds[name] = sample["publish_seconds"]
            entry = results.setdefault(name, dict(sample))
            if sample["answers"] != entry["answers"]:
                raise AssertionError(
                    f"pass {name!r} changed the answer bag: "
                    f"{sample['answers']} != {entry['answers']}"
                )
            entry["publish_seconds"] = min(
                entry["publish_seconds"], sample["publish_seconds"]
            )
            entry["spans_recorded"] = max(
                entry["spans_recorded"], sample["spans_recorded"]
            )
        base = round_seconds["baseline"]
        off_ratios.append(base / round_seconds["off"] if round_seconds["off"] else 0.0)
        on_ratios.append(base / round_seconds["on"] if round_seconds["on"] else 0.0)
    for entry in results.values():
        seconds = entry["publish_seconds"]
        entry["tuples_per_sec"] = len(tuples) / seconds if seconds > 0 else 0.0
    return {"modes": results, "off_ratios": off_ratios, "on_ratios": on_ratios}


def run_bench(
    smoke: bool = False,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    trace_out: Optional[Path] = None,
    attempts: int = DEFAULT_ATTEMPTS,
) -> Dict[str, object]:
    """Measure the overhead gates; the report carries pass/fail verdicts.

    The ``off`` pass is a *control*: it runs code byte-identical to the
    baseline pass, so any deviation of its ratio from 1.0 is host noise,
    not instrumentation.  A measurement only counts as trustworthy when
    the control lands within the off band ([``OFF_FLOOR``, 2-``OFF_FLOOR``]);
    otherwise the whole interleaved measurement is retried, up to
    ``attempts`` times, and the gates go advisory if the host never
    produces a clean control — a noisy box must not fail CI on identical
    code.
    """
    num_nodes, num_queries, num_tuples = (8, 6, 20) if smoke else (24, 30, 120)
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        seed=901,
    )
    generator = WorkloadGenerator(spec)
    queries = generator.generate_queries(num_queries)
    tuples = generator.generate_tuples(num_tuples)

    control_band = (OFF_FLOOR, 2.0 - OFF_FLOOR)
    attempts = max(1, attempts)
    attempts_used = 0
    control_ok = False
    for _ in range(attempts):
        attempts_used += 1
        measured = _measure(num_nodes, queries, tuples, generator, trace_out)
        modes = measured["modes"]
        baseline, off, on = modes["baseline"], modes["off"], modes["on"]
        if len({baseline["answers"], off["answers"], on["answers"]}) != 1:
            raise AssertionError(
                "observability changed the answer bag across modes: "
                f"baseline={baseline['answers']}, off={off['answers']}, "
                f"on={on['answers']}"
            )
        off_ratio = median(measured["off_ratios"])
        on_ratio = median(measured["on_ratios"])
        control_ok = control_band[0] <= off_ratio <= control_band[1]
        if baseline["publish_seconds"] < min_seconds:
            break  # the window can never validate — no point retrying
        if control_ok:
            break

    enforced = baseline["publish_seconds"] >= min_seconds and control_ok
    passed = (not enforced) or (off_ratio >= OFF_FLOOR and on_ratio >= ON_FLOOR)
    return {
        "num_nodes": num_nodes,
        "num_queries": num_queries,
        "num_tuples": num_tuples,
        "repeats": REPEATS,
        "smoke": smoke,
        "answers": int(baseline["answers"]),
        "modes": {"baseline": baseline, "off": off, "on": on},
        "gates": {
            "off_floor": OFF_FLOOR,
            "on_floor": ON_FLOOR,
            "off_over_baseline": off_ratio,
            "on_over_baseline": on_ratio,
            "off_ratio_rounds": measured["off_ratios"],
            "on_ratio_rounds": measured["on_ratios"],
            "min_seconds": min_seconds,
            "window_seconds": baseline["publish_seconds"],
            "control_ok": control_ok,
            "attempts": attempts,
            "attempts_used": attempts_used,
            "enforced": enforced,
            "passed": passed,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes (correctness sweep only)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when an enforced overhead gate fails",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="dump the 'on' pass's spans to this JSONL file",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="baseline window below which the gates are advisory",
    )
    parser.add_argument(
        "--attempts",
        type=int,
        default=DEFAULT_ATTEMPTS,
        help="re-measure this many times while the off control is noisy",
    )
    args = parser.parse_args(argv)

    report = run_bench(
        smoke=args.smoke,
        min_seconds=args.min_seconds,
        trace_out=args.trace_out,
        attempts=args.attempts,
    )
    gates = report["gates"]
    if gates["enforced"]:
        note = ""
    elif not gates["control_ok"]:
        note = " [advisory: off control outside band — host too noisy]"
    else:
        note = " [advisory: window too short]"
    print(
        f"observability overhead: off {gates['off_over_baseline']:.3f}x "
        f"(floor {gates['off_floor']}), on {gates['on_over_baseline']:.3f}x "
        f"(floor {gates['on_floor']}), window "
        f"{gates['window_seconds']:.3f}s, "
        f"attempt {gates['attempts_used']}/{gates['attempts']}" + note
    )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {args.output}")
    if args.trace_out is not None:
        print(f"wrote {args.trace_out}")
    if args.check and not gates["passed"]:
        print("observability overhead gate FAILED")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
