"""Rule registry of the static-analysis suite.

Adding a rule: subclass :class:`repro.analysis.base.Rule` in a module next
to the existing ones, give it a unique ``name``, and list an instance in
:data:`ALL_RULES` below — ``python -m repro.analysis check`` picks it up,
``--rules`` can select it, and allowlist comments address it by name.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.base import Rule
from repro.analysis.rules.annotations import AnnotationCompletenessRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exceptions import ExceptionDisciplineRule
from repro.analysis.rules.metrics_registry import MetricsRegistryRule
from repro.analysis.rules.protocol import ProtocolRule
from repro.analysis.rules.store_contract import StoreContractRule

#: Every shipped rule, in report order.
ALL_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    ProtocolRule(),
    MetricsRegistryRule(),
    StoreContractRule(),
    ExceptionDisciplineRule(),
    AnnotationCompletenessRule(),
)


def rules_by_name() -> Dict[str, Rule]:
    """``rule id -> rule instance`` for every shipped rule."""
    return {rule.name: rule for rule in ALL_RULES}
