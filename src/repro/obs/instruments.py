"""Metrics instruments: counters, gauges and mergeable histograms.

The registry is the quantitative half of the observability layer: while
:mod:`repro.obs.trace` follows *individual* operations, the instruments
aggregate — latency distributions, per-node and per-key load counters,
inbox depth.  Histograms use fixed bucket boundaries so two registries
(e.g. from different worker processes) merge by adding bucket counts, and
percentile estimates are deterministic functions of the recorded values.

Every histogram the layer records into is declared up front in
:data:`HISTOGRAMS`; the ``metrics-registry`` analysis rule pins the
declared names against ``SUMMARY_SCHEMA`` (each histogram surfaces as
``{name}_p50`` / ``{name}_p95`` / ``{name}_p99`` in
``RJoinEngine.metrics_summary``), so adding an instrument without
extending the result schema fails lint instead of shipping silent zeros.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

#: Geometric bucket ladder for logical-time latencies (hop_delay defaults
#: to 1.0, so end-to-end latencies live in the low hundreds):
#: 0.5, 1, 2, ... 1024.
_LATENCY_BUCKETS: Tuple[float, ...] = tuple(0.5 * 2.0**exp for exp in range(12))

#: Wall-clock service times in microseconds (asyncio runtime only):
#: 10us doubling up to ~0.16s.
_WALL_US_BUCKETS: Tuple[float, ...] = tuple(10.0 * 2.0**exp for exp in range(15))

#: Small-count ladder (queue depths, batch sizes): 0, 1, 2, 4, ... 4096.
_COUNT_BUCKETS: Tuple[float, ...] = (0.0,) + tuple(2.0**exp for exp in range(13))


@dataclass(frozen=True)
class HistogramSpec:
    """Declaration of one fixed-bucket histogram instrument."""

    name: str
    buckets: Tuple[float, ...]
    unit: str
    description: str


#: The declared histogram instruments.  Machine-checked (rule
#: ``metrics-registry``): each name must surface as percentile keys in
#: ``SUMMARY_SCHEMA`` and be folded into ``metrics_summary`` via
#: :func:`histogram_percentiles`.
HISTOGRAMS: Tuple[HistogramSpec, ...] = (
    HistogramSpec(
        name="answer_latency",
        buckets=_LATENCY_BUCKETS,
        unit="logical",
        description="publish/submit to answer-delivery latency",
    ),
    HistogramSpec(
        name="hop_delay",
        buckets=_LATENCY_BUCKETS,
        unit="logical",
        description="per-message transit delay (send to delivery)",
    ),
    HistogramSpec(
        name="handler_service_time_us",
        buckets=_WALL_US_BUCKETS,
        unit="us",
        description="wall-clock handler service time (asyncio runtime)",
    ),
    HistogramSpec(
        name="inbox_depth",
        buckets=_COUNT_BUCKETS,
        unit="events",
        description="pending transport events observed at each delivery",
    ),
    HistogramSpec(
        name="store_probe_batch",
        buckets=_COUNT_BUCKETS,
        unit="tuples",
        description="result sizes of set-at-a-time store batch probes",
    ),
)

#: Percentile points folded into the metrics summary per histogram.
PERCENTILE_POINTS: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


class Histogram:
    """A fixed-bucket histogram; mergeable, with deterministic percentiles.

    ``buckets`` are inclusive upper bounds; values above the last bound
    land in an overflow bucket whose percentile estimate is the observed
    maximum.  A percentile is the upper bound of the bucket containing the
    nearest-rank sample — a deterministic overestimate that never depends
    on recording order.
    """

    def __init__(self, spec: HistogramSpec) -> None:
        if not spec.buckets or list(spec.buckets) != sorted(set(spec.buckets)):
            raise ObservabilityError(
                f"histogram {spec.name!r} needs strictly increasing buckets"
            )
        self.spec = spec
        # Bucket bounds re-bound locally: ``record`` runs several times per
        # message delivery, and ``self._buckets`` is one attribute load
        # where ``self.spec.buckets`` is two.
        self._buckets = spec.buckets
        self._counts = [0] * (len(spec.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect_left(self._buckets, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical buckets into this one."""
        if other.spec.buckets != self.spec.buckets:
            raise ObservabilityError(
                f"cannot merge histogram {other.spec.name!r} into "
                f"{self.spec.name!r}: bucket boundaries differ"
            )
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile estimate (0.0 on an empty histogram)."""
        if not 0 < fraction <= 1:
            raise ObservabilityError("percentile fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.999999))
        cumulative = 0
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank:
                if index < len(self.spec.buckets):
                    return self.spec.buckets[index]
                return self.max
        return self.max

    @property
    def mean(self) -> float:
        """Mean of the recorded observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> List[int]:
        """Per-bucket observation counts (last entry = overflow bucket)."""
        return list(self._counts)


class Counter:
    """A monotone counter with an optional bounded label dimension."""

    #: Once this many distinct labels exist, further labels collapse into
    #: one overflow bucket so hot-key floods cannot exhaust memory.
    OVERFLOW_LABEL = "__other__"

    def __init__(self, name: str, max_labels: int = 1024) -> None:
        if max_labels <= 0:
            raise ObservabilityError("max_labels must be positive")
        self.name = name
        self.max_labels = max_labels
        self.value = 0
        self.by_label: Dict[str, int] = {}

    def inc(self, label: Optional[str] = None, amount: int = 1) -> None:
        """Increment the counter (and the label's sub-counter, if given)."""
        self.value += amount
        if label is None:
            return
        by_label = self.by_label
        current = by_label.get(label)
        if current is None:
            if len(by_label) >= self.max_labels:
                label = self.OVERFLOW_LABEL
                current = by_label.get(label, 0)
            else:
                current = 0
        by_label[label] = current + amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter's totals and labels into this one."""
        self.value += other.value
        for label, amount in other.by_label.items():
            if label not in self.by_label and len(self.by_label) >= self.max_labels:
                label = self.OVERFLOW_LABEL
            self.by_label[label] = self.by_label.get(label, 0) + amount


class Gauge:
    """A last-value instrument that also tracks its high-water mark."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in (keeps the joint high-water mark)."""
        self.value = other.value
        self.max = max(self.max, other.max)


class MetricsRegistry:
    """All instruments of one engine (or one worker process).

    Histograms are created eagerly from :data:`HISTOGRAMS` — asking for an
    undeclared histogram raises, which keeps the declaration authoritative
    at runtime exactly as the analysis rule keeps it at lint time.
    Counters and gauges are created on demand.
    """

    def __init__(self) -> None:
        self._histograms = {spec.name: Histogram(spec) for spec in HISTOGRAMS}
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    def histogram(self, name: str) -> Histogram:
        """The declared histogram called ``name``."""
        try:
            return self._histograms[name]
        except KeyError:
            declared = ", ".join(sorted(self._histograms))
            raise ObservabilityError(
                f"histogram {name!r} is not declared in HISTOGRAMS "
                f"(declared: {declared}); declare it and extend "
                "SUMMARY_SCHEMA"
            ) from None

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (cross-process aggregation)."""
        for name, histogram in other._histograms.items():
            self._histograms[name].merge(histogram)
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe dump of every instrument (for debugging/export)."""
        return {
            "histograms": {
                name: {
                    "count": hist.count,
                    "mean": hist.mean,
                    "max": hist.max,
                    "buckets": list(hist.spec.buckets),
                    "counts": hist.bucket_counts(),
                }
                for name, hist in sorted(self._histograms.items())
            },
            "counters": {
                name: {"value": counter.value, "by_label": dict(counter.by_label)}
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": gauge.value, "max": gauge.max}
                for name, gauge in sorted(self._gauges.items())
            },
        }


def histogram_percentiles(
    registry: Optional[MetricsRegistry],
) -> Dict[str, float]:
    """The summary-schema fold: ``{name}_{p50,p95,p99}`` per declared histogram.

    With ``registry=None`` (observability off) every key is still present,
    as zero — the result schema does not depend on the observability mode.
    """
    folded: Dict[str, float] = {}
    for spec in HISTOGRAMS:
        histogram = None if registry is None else registry.histogram(spec.name)
        for suffix, fraction in PERCENTILE_POINTS:
            folded[f"{spec.name}_{suffix}"] = (
                0.0 if histogram is None else histogram.percentile(fraction)
            )
    return folded
