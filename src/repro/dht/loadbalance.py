"""Id-movement load balancing (lower-layer optimisation of Figure 9).

The paper's last experiment plugs in the load-balancing technique of Karger
and Ruhl [19], "which is based on allowing a node to change its position on
the identifier circle", to balance responsibility for rewritten queries and
tuples among the nodes.  :class:`IdMovementBalancer` reproduces that effect:

* the load of every node is measured by a caller-supplied function (the
  engine uses storage + query-processing load),
* lightly loaded nodes are moved next to the most heavily loaded nodes so
  that they take over (roughly) half of the heavy node's key range,
* after the ring changes, the caller re-homes application state whose
  ownership moved (the engine does this through its own re-homing hook).

The algorithm is intentionally simple — one balancing round pairs the k most
loaded nodes with the k least loaded ones — because the paper only uses it to
demonstrate that RJoin can exploit lower-level DHT optimisations unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional

from repro.dht.chord import ChordNode, ChordRing
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IdMove:
    """A single id movement performed by the balancer."""

    address: str
    old_id: int
    new_id: int
    donor_address: str


class IdMovementBalancer:
    """Pairs lightly loaded nodes with heavily loaded ones and moves their ids."""

    def __init__(
        self,
        ring: ChordRing,
        light_load_factor: float = 0.5,
        max_moves_per_round: Optional[int] = None,
    ) -> None:
        if light_load_factor <= 0 or light_load_factor > 1:
            raise ConfigurationError("light_load_factor must be in (0, 1]")
        self.ring = ring
        self.light_load_factor = light_load_factor
        self.max_moves_per_round = max_moves_per_round
        self.moves_performed: List[IdMove] = []

    # ------------------------------------------------------------------
    # balancing
    # ------------------------------------------------------------------
    def rebalance(self, loads: Mapping[str, float]) -> List[IdMove]:
        """Run one balancing round given per-node loads (keyed by address).

        Nodes whose load is below ``light_load_factor * average`` are
        candidates to move; they are paired, heaviest-first, with the most
        loaded nodes and re-join at the midpoint of the heavy node's arc so
        that they take over about half of its key range.  Returns the moves
        performed (which the caller must follow with state re-homing).
        """
        if len(self.ring) < 2 or not loads:
            return []
        average = sum(loads.values()) / max(len(loads), 1)
        ranked = sorted(loads.items(), key=lambda item: item[1], reverse=True)
        heavy = [addr for addr, load in ranked if load > average]
        light = [
            addr
            for addr, load in reversed(ranked)
            if load <= average * self.light_load_factor
        ]
        moves: List[IdMove] = []
        budget = self.max_moves_per_round
        for donor_address, mover_address in zip(heavy, light):
            if budget is not None and len(moves) >= budget:
                break
            if donor_address == mover_address:
                continue
            move = self._move_next_to(mover_address, donor_address)
            if move is not None:
                moves.append(move)
        self.moves_performed.extend(moves)
        return moves

    def _move_next_to(self, mover_address: str, donor_address: str) -> Optional[IdMove]:
        """Move ``mover`` to the midpoint of ``donor``'s arc (taking half its keys)."""
        donor = self.ring.node_by_address(donor_address)
        mover = self.ring.node_by_address(mover_address)
        predecessor = self.ring.predecessor_of(donor)
        if predecessor.address == donor.address:
            return None  # single-node ring
        new_id = self.ring.space.midpoint(predecessor.node_id, donor.node_id)
        if new_id in (predecessor.node_id, donor.node_id):
            return None  # arc too small to split
        # If the mover currently precedes the donor directly, moving it would
        # not change ownership; skip.
        if predecessor.address == mover.address:
            return None
        old_id = mover.node_id
        try:
            self.ring.move_node(mover_address, new_id)
        except Exception:
            return None
        return IdMove(
            address=mover_address,
            old_id=old_id,
            new_id=new_id,
            donor_address=donor_address,
        )

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def rebalance_with(
        self, load_of: Callable[[ChordNode], float]
    ) -> List[IdMove]:
        """Measure loads with ``load_of`` and run :meth:`rebalance`."""
        loads = {node.address: load_of(node) for node in self.ring.nodes}
        return self.rebalance(loads)
