"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
import signal

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.data.schema import Catalog


@pytest.fixture(autouse=True)
def _hard_timeout(request):
    """Hard per-test timeout guard, opt-in via ``@pytest.mark.hard_timeout(s)``.

    The concurrent-runtime tests drive a real event loop; a bug there hangs
    instead of failing.  pytest-timeout is not part of the CI image, so the
    guard is a plain SIGALRM: the marked test gets ``seconds`` (default 60)
    of wall clock before a ``TimeoutError`` aborts it with a stack trace.
    No-op on platforms without SIGALRM.
    """
    marker = request.node.get_closest_marker("hard_timeout")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 60

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded the hard {seconds}s timeout (likely a hang in "
            "the concurrent runtime)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def small_catalog() -> Catalog:
    """A three-relation catalog used by most engine-level tests."""
    catalog = Catalog()
    catalog.add_relation("R", ["a", "b"])
    catalog.add_relation("S", ["c", "d"])
    catalog.add_relation("T", ["e", "f"])
    return catalog


@pytest.fixture
def engine(small_catalog) -> RJoinEngine:
    """A small deterministic engine over the three-relation catalog."""
    eng = RJoinEngine(RJoinConfig(num_nodes=16, seed=7), catalog=small_catalog)
    return eng


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator."""
    return random.Random(1234)


def make_engine(catalog: Catalog, **config_overrides) -> RJoinEngine:
    """Helper used by tests that need custom engine configurations."""
    params = {"num_nodes": 16, "seed": 7}
    params.update(config_overrides)
    return RJoinEngine(RJoinConfig(**params), catalog=catalog)
