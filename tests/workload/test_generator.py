"""Tests for the workload generator."""

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.sql.ast import WindowSpec
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


class TestWorkloadSpec:
    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.num_relations == 10
        assert spec.attributes_per_relation == 10
        assert spec.value_domain == 100
        assert spec.zipf_theta == 0.9
        assert spec.join_arity == 4

    def test_invalid_arity(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(join_arity=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(num_relations=3, join_arity=4)

    def test_invalid_domain(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(value_domain=0)


class TestQueryGeneration:
    def test_query_shape(self):
        generator = WorkloadGenerator(WorkloadSpec(seed=1))
        query = generator.generate_query()
        assert query.arity == 4
        assert query.num_joins == 3
        assert len(set(query.relations)) == 4
        query.validate(generator.catalog)

    def test_chain_shape_adjacent_joins_share_a_relation(self):
        generator = WorkloadGenerator(WorkloadSpec(seed=2))
        query = generator.generate_query()
        for first, second in zip(query.join_predicates, query.join_predicates[1:]):
            assert first.relations() & second.relations()

    def test_configurable_arity(self):
        generator = WorkloadGenerator(WorkloadSpec(join_arity=6, seed=3))
        query = generator.generate_query()
        assert query.arity == 6
        assert query.num_joins == 5

    def test_window_and_distinct_propagate(self):
        window = WindowSpec(size=50, mode="tuples")
        generator = WorkloadGenerator(
            WorkloadSpec(window=window, distinct=True, seed=4)
        )
        query = generator.generate_query()
        assert query.window == window
        assert query.distinct

    def test_batch_generation(self):
        generator = WorkloadGenerator(WorkloadSpec(seed=5))
        queries = generator.generate_queries(20)
        assert len(queries) == 20

    def test_determinism(self):
        a = WorkloadGenerator(WorkloadSpec(seed=6)).generate_queries(5)
        b = WorkloadGenerator(WorkloadSpec(seed=6)).generate_queries(5)
        assert a == b


class TestTupleGeneration:
    def test_tuple_shape(self):
        generator = WorkloadGenerator(WorkloadSpec(seed=7))
        generated = generator.generate_tuple()
        schema = generator.catalog.get(generated.relation)
        assert len(generated.values) == schema.arity
        assert all(0 <= v < 100 for v in generated.values)

    def test_stream_is_lazy_and_bounded(self):
        generator = WorkloadGenerator(WorkloadSpec(seed=8))
        stream = generator.tuple_stream(5)
        assert len(list(stream)) == 5

    def test_relation_skew(self):
        generator = WorkloadGenerator(WorkloadSpec(seed=9, zipf_theta=0.9))
        counts = Counter(t.relation for t in generator.generate_tuples(2000))
        hottest = generator.hottest_relation()
        coldest = generator.coldest_relation()
        assert counts[hottest] > counts.get(coldest, 0) * 2

    def test_determinism(self):
        a = WorkloadGenerator(WorkloadSpec(seed=10)).generate_tuples(10)
        b = WorkloadGenerator(WorkloadSpec(seed=10)).generate_tuples(10)
        assert a == b


class TestArrivalPatternKnobs:
    def test_invalid_burst_and_hotkey_specs(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(burst_size=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(hot_key_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(hot_key_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(hot_value_count=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(value_domain=10, hot_value_count=11)

    def test_tuple_batches_groups_the_same_stream(self):
        flat = WorkloadGenerator(WorkloadSpec(seed=5))
        batched = WorkloadGenerator(WorkloadSpec(seed=5, burst_size=7))
        stream = flat.generate_tuples(20)
        batches = list(batched.tuple_batches(20))
        assert [len(b) for b in batches] == [7, 7, 6]
        assert [t for batch in batches for t in batch] == stream

    def test_tuple_batches_explicit_size_overrides_spec(self):
        generator = WorkloadGenerator(WorkloadSpec(seed=5, burst_size=3))
        assert [len(b) for b in generator.tuple_batches(10, batch_size=5)] == [5, 5]
        with pytest.raises(ConfigurationError):
            list(generator.tuple_batches(4, batch_size=0))

    def test_disabled_hot_keys_leave_stream_unchanged(self):
        classic = WorkloadGenerator(WorkloadSpec(seed=9))
        knobbed = WorkloadGenerator(
            WorkloadSpec(seed=9, hot_key_fraction=0.0, hot_value_count=5, burst_size=4)
        )
        assert classic.generate_tuples(50) == knobbed.generate_tuples(50)

    def test_hot_keys_concentrate_values(self):
        generator = WorkloadGenerator(
            WorkloadSpec(seed=9, hot_key_fraction=1.0, hot_value_count=2)
        )
        for generated in generator.generate_tuples(30):
            assert all(value in (0, 1) for value in generated.values)

    def test_hot_key_fraction_is_deterministic(self):
        a = WorkloadGenerator(WorkloadSpec(seed=9, hot_key_fraction=0.5))
        b = WorkloadGenerator(WorkloadSpec(seed=9, hot_key_fraction=0.5))
        assert a.generate_tuples(40) == b.generate_tuples(40)
