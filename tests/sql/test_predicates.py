"""Tests for where-clause utilities (closure, implied selections)."""

from repro.data.schema import AttributeRef
from repro.sql.ast import SelectionPredicate
from repro.sql.parser import parse_query
from repro.sql.predicates import (
    all_selections,
    equality_closure,
    implied_selections,
    is_contradictory,
    join_graph_edges,
    predicates_for_relation,
)


def test_equality_closure_groups_joined_attributes():
    query = parse_query(
        "SELECT R.a FROM R, S, T WHERE R.a = S.c AND S.c = T.e", validate=False
    )
    groups = equality_closure(query)
    joined = next(g for g in groups if AttributeRef("R", "a") in g)
    assert AttributeRef("S", "c") in joined
    assert AttributeRef("T", "e") in joined


def test_implied_selections_from_closure():
    query = parse_query(
        "SELECT R.a FROM R, S WHERE R.b = S.c AND S.c = 5", validate=False
    )
    implied = implied_selections(query)
    assert SelectionPredicate(AttributeRef("R", "b"), 5) in implied
    # the explicit selection itself is not repeated
    assert SelectionPredicate(AttributeRef("S", "c"), 5) not in implied


def test_implied_selections_skip_groups_without_constant():
    query = parse_query("SELECT R.a FROM R, S WHERE R.b = S.c")
    assert implied_selections(query) == []


def test_all_selections_merges_without_duplicates():
    query = parse_query(
        "SELECT R.a FROM R, S WHERE R.b = S.c AND S.c = 5 AND R.a = 1",
        validate=False,
    )
    merged = all_selections(query)
    keys = [(sp.attribute, sp.value) for sp in merged]
    assert len(keys) == len(set(keys))
    assert SelectionPredicate(AttributeRef("R", "b"), 5) in merged


def test_predicates_for_relation():
    query = parse_query(
        "SELECT R.a FROM R, S WHERE R.b = S.c AND R.a = 1", validate=False
    )
    joins, selections = predicates_for_relation(query, "R")
    assert len(joins) == 1 and len(selections) == 1
    joins_s, selections_s = predicates_for_relation(query, "S")
    assert len(joins_s) == 1 and not selections_s


def test_is_contradictory():
    a = SelectionPredicate(AttributeRef("R", "a"), 1)
    b = SelectionPredicate(AttributeRef("R", "a"), 2)
    c = SelectionPredicate(AttributeRef("R", "b"), 2)
    assert is_contradictory([a, b])
    assert not is_contradictory([a, c])
    assert not is_contradictory([a, a])


def test_join_graph_edges():
    query = parse_query(
        "SELECT R.a FROM R, S, T WHERE R.a = S.c AND S.d = T.e"
    )
    assert sorted(join_graph_edges(query)) == [("R", "S"), ("S", "T")]
