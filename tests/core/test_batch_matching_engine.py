"""Batch-vs-per-tuple answer equivalence at the engine level.

The set-at-a-time store matching work rides the same invariant as the
backend swap: *how* tuples reach the stores (one ``publish`` per tuple vs
bursts through ``RJoinEngine.publish_batch``) and which backend serves the
probes are implementation details — the bag of answers every query handle
collects must be identical across all four indexing strategies, all three
backends, both publish paths and the centralised reference oracle.

Two window regimes, because exact batch-vs-per-tuple equality is only
defined for one of them:

* a tuple-mode window wider than the whole run — nothing can expire, so
  the two publish paths must agree answer-for-answer (and with the
  reference oracle);
* a tight tuple-mode window under GC pressure — ``publish_batch`` assigns
  the batch's sequence numbers up front, so the tuple clock legitimately
  runs ahead of per-tuple publication and expiry decisions may differ
  between the paths.  What must NOT differ there is the backend: the batch
  path has to produce identical answers on ``memory``, ``sqlite`` and
  ``append-log``.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.data.backends import BACKEND_NAMES
from repro.sql.ast import WindowSpec
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

STRATEGIES = ("rjoin", "random", "worst", "first")

NUM_QUERIES = 6
NUM_TUPLES = 60
BATCH_SIZE = 10


def run_workload(
    backend: str,
    strategy: str,
    batched: bool,
    window_size: float,
    seed: int = 11,
):
    """One run over the given backend; ``batched`` selects the publish path."""
    window = WindowSpec(size=window_size, mode="tuples")
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        window=window,
        seed=seed,
    )
    generator = WorkloadGenerator(spec)
    config = RJoinConfig(
        num_nodes=16,
        seed=seed,
        strategy=strategy,
        store_backend=backend,
        tuple_gc_window=window,
        gc_every_tuples=10,
    )
    engine = RJoinEngine(config)
    engine.register_catalog(generator.catalog)
    reference = ReferenceEngine(generator.catalog)
    handles = []
    for query in generator.generate_queries(NUM_QUERIES):
        handle = engine.submit(query)
        reference.submit(
            query, query_id=handle.query_id, insertion_time=handle.insertion_time
        )
        handles.append(handle)
    rows = [
        (generated.relation, generated.values)
        for generated in generator.generate_tuples(NUM_TUPLES)
    ]
    if batched:
        for start in range(0, len(rows), BATCH_SIZE):
            for tup in engine.publish_batch(rows[start : start + BATCH_SIZE]):
                reference.publish_tuple(tup)
    else:
        for relation, values in rows:
            reference.publish_tuple(engine.publish(relation, values))
    return engine, reference, handles


def as_bag(values) -> List[str]:
    return sorted(repr(v) for v in values)


class TestBatchPublishEquivalence:
    """Expiry-free window: batch == per-tuple == reference, whole grid."""

    WINDOW = float(NUM_TUPLES + 40)  # wider than the run — nothing expires

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batched_publish_matches_per_tuple_and_reference(
        self, backend, strategy
    ):
        """strategy × backend grid: batch path == per-tuple path == oracle."""
        _, _, per_tuple_handles = run_workload(
            backend, strategy, batched=False, window_size=self.WINDOW
        )
        _, reference, batch_handles = run_workload(
            backend, strategy, batched=True, window_size=self.WINDOW
        )
        assert len(batch_handles) == len(per_tuple_handles)
        collected = 0
        for handle, per_tuple_handle in zip(batch_handles, per_tuple_handles):
            bag = as_bag(handle.values())
            assert bag == as_bag(per_tuple_handle.values())
            assert bag == as_bag(reference.answers(handle.query_id))
            collected += len(bag)
        assert collected > 0  # the workload must actually join something


class TestBatchPathBackendInvariance:
    """Tight window + GC pressure: the batch path is backend-invariant."""

    WINDOW = 25.0

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batched_answers_identical_across_backends(self, backend, strategy):
        _, _, memory_handles = run_workload(
            "memory", strategy, batched=True, window_size=self.WINDOW
        )
        _, _, handles = run_workload(
            backend, strategy, batched=True, window_size=self.WINDOW
        )
        for handle, memory_handle in zip(handles, memory_handles):
            assert as_bag(handle.values()) == as_bag(memory_handle.values())
