"""Runtime markers consumed by the static-analysis suite (:mod:`repro.analysis`).

The analyzer enforces project invariants (determinism purity, exception
discipline, …) over the source tree.  Some code is *legitimately* outside an
invariant — the kernel-clock plumbing may read simulated time, the seeded
RNG helpers wrap :mod:`random` on purpose.  Such code declares its exemption
explicitly, either with a trailing line comment::

    started = time.perf_counter()  # repro: allow[determinism-purity] harness timing

or, for a whole function or class, with the :func:`lint_allow` decorator::

    @lint_allow("determinism-purity", reason="seeded RNG plumbing")
    def fresh_rng(seed: int) -> random.Random: ...

Both forms are found by the analyzer at lint time; at runtime the decorator
is a no-op, so importing it costs nothing.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_T = TypeVar("_T")


def lint_allow(*rules: str, reason: str = "") -> Callable[[_T], _T]:
    """Exempt the decorated function or class from the named analysis rules.

    ``rules`` are analyzer rule identifiers (e.g. ``"determinism-purity"``);
    ``reason`` documents why the exemption is sound.  The decorator returns
    its target unchanged — it exists purely as a marker for
    :mod:`repro.analysis`.
    """
    del rules, reason  # consumed statically by the analyzer, not at runtime

    def decorate(target: _T) -> _T:
        return target

    return decorate
