"""Re-homing cost per membership event (node join / graceful leave / crash).

Builds a warmed-up engine (queries indexed, tuples stored), then drives a
sequence of membership events of each kind against it and records, in
``benchmarks/BENCH_churn.json``:

* wall-clock per event (mean over the sequence),
* records and estimated payload bytes re-homed per join/leave,
* records and estimated payload bytes lost per crash,
* events per second — how fast the engine absorbs topology change.

Each kind is measured on a *fresh copy* of the warmed engine so the ring
sizes are comparable (a crash-depleted ring would make later joins cheaper).

Usage::

    PYTHONPATH=src python benchmarks/bench_churn.py [--smoke]
        [--events N] [--nodes N] [--queries N] [--tuples N]

``--smoke`` shrinks everything to a correctness sweep (used by
``run_all.py`` / the ``bench_smoke`` marker).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_churn.json"

DEFAULT_SIZES = {"nodes": 64, "queries": 200, "tuples": 300, "events": 10}
SMOKE_SIZES = {"nodes": 12, "queries": 10, "tuples": 20, "events": 2}


def _build_engine(nodes: int, queries: int, tuples: int, seed: int = 7) -> RJoinEngine:
    """A warmed-up engine with indexed queries and stored tuples."""
    spec = WorkloadSpec(
        num_relations=6,
        attributes_per_relation=4,
        value_domain=20,
        join_arity=3,
        seed=seed,
    )
    generator = WorkloadGenerator(spec)
    engine = RJoinEngine(RJoinConfig(num_nodes=nodes, seed=seed))
    engine.register_catalog(generator.catalog)
    for query in generator.generate_queries(queries):
        engine.submit(query, process=False)
    engine.run()
    for generated in generator.generate_tuples(tuples):
        engine.publish(generated.relation, generated.values, process=False)
    engine.run()
    return engine


def _measure(
    kind: str, nodes: int, queries: int, tuples: int, events: int
) -> Dict[str, object]:
    """Time ``events`` membership events of one kind on a fresh engine."""
    engine = _build_engine(nodes, queries, tuples)
    before_events = engine.churn.total_events
    started = time.perf_counter()
    for _ in range(events):
        if kind == "join":
            engine.add_node()
        elif kind == "leave":
            engine.remove_node(graceful=True)
        else:
            engine.crash_node()
    elapsed = time.perf_counter() - started
    performed = engine.churn.total_events - before_events
    stats = engine.churn
    per_event = elapsed / performed if performed else 0.0
    return {
        "kind": kind,
        "events": performed,
        "seconds": elapsed,
        "seconds_per_event": per_event,
        "events_per_second": (1.0 / per_event) if per_event else 0.0,
        "records_rehomed": stats.records_rehomed,
        "bytes_rehomed": stats.bytes_rehomed,
        "records_lost": stats.records_lost,
        "bytes_lost": stats.bytes_lost,
        "records_per_event": (
            (stats.records_rehomed + stats.records_lost) / performed
            if performed
            else 0.0
        ),
    }


def run_bench(smoke: bool = False, **overrides) -> Dict[str, object]:
    """Measure re-homing cost per membership event for every event kind."""
    sizes = dict(SMOKE_SIZES if smoke else DEFAULT_SIZES)
    sizes.update({k: v for k, v in overrides.items() if v is not None})
    results: List[Dict[str, object]] = [
        _measure(
            kind, sizes["nodes"], sizes["queries"], sizes["tuples"], sizes["events"]
        )
        for kind in ("join", "leave", "crash")
    ]
    return {"smoke": smoke, "sizes": sizes, "results": results}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes (correctness sweep only)"
    )
    parser.add_argument("--events", type=int, default=None)
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    report = run_bench(
        smoke=args.smoke,
        events=args.events,
        nodes=args.nodes,
        queries=args.queries,
        tuples=args.tuples,
    )
    for row in report["results"]:
        print(
            f"{row['kind']:6s}: {row['events']} events, "
            f"{row['seconds_per_event'] * 1000:.2f} ms/event, "
            f"{row['records_per_event']:.1f} records/event "
            f"(rehomed {row['records_rehomed']}, lost {row['records_lost']})"
        )
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
