"""Tests for the Zipf sampler."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workload.zipf import ZipfSampler


class TestZipfSampler:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, theta=-0.1)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(10, theta=0.9)
        assert sum(sampler.probabilities()) == pytest.approx(1.0)

    def test_probabilities_decrease_with_rank(self):
        sampler = ZipfSampler(10, theta=0.9)
        probs = sampler.probabilities()
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(4, theta=0.0)
        assert sampler.probabilities() == pytest.approx([0.25] * 4)

    def test_samples_within_range(self):
        sampler = ZipfSampler(7, theta=0.9, rng=random.Random(1))
        assert all(0 <= s < 7 for s in sampler.sample_many(500))

    def test_skew_observed_in_samples(self):
        sampler = ZipfSampler(10, theta=0.9, rng=random.Random(2))
        counts = Counter(sampler.sample_many(5000))
        assert counts[0] > counts[9] * 2

    def test_higher_theta_more_skewed(self):
        low = ZipfSampler(10, theta=0.3)
        high = ZipfSampler(10, theta=0.9)
        assert high.expected_skew_ratio() > low.expected_skew_ratio()

    def test_determinism_with_seeded_rng(self):
        a = ZipfSampler(10, theta=0.9, rng=random.Random(3)).sample_many(50)
        b = ZipfSampler(10, theta=0.9, rng=random.Random(3)).sample_many(50)
        assert a == b

    def test_probability_of_rank_bounds(self):
        sampler = ZipfSampler(5)
        with pytest.raises(ConfigurationError):
            sampler.probability_of_rank(5)
        assert sampler.probability_of_rank(0) > sampler.probability_of_rank(4)

    def test_single_item(self):
        sampler = ZipfSampler(1, theta=0.9)
        assert sampler.sample() == 0
