#!/usr/bin/env python3
"""A decentralised marketplace pipeline: 4-way joins, DISTINCT and load balancing.

A peer-to-peer marketplace publishes four append-only streams into the DHT:

* ``listings(item, seller, price)``
* ``bids(item, buyer, offer)``
* ``escrows(item, buyer)``
* ``ratings(seller, score)``

Two continuous queries are registered:

1. a 4-way join that matches a listing with a bid, an escrow created by the
   same buyer for the same item, and a rating for the seller — the full
   "trusted sale" pipeline of the introduction's motivating scenarios,
2. a DISTINCT 2-way join listing which sellers received at least one bid
   (set semantics of Section 4).

The example also demonstrates the lower-level id-movement load balancing of
Figure 9: it prints the most-loaded node's storage before and after a
balancing round.

Run with::

    python examples/marketplace_pipeline.py
"""

from __future__ import annotations

import random

from repro import RJoinConfig, RJoinEngine


def main() -> None:
    engine = RJoinEngine(
        RJoinConfig(num_nodes=40, seed=23, id_movement=True, rebalance_every_tuples=60)
    )
    engine.register_relation("listings", ["item", "seller", "price"])
    engine.register_relation("bids", ["item", "buyer", "offer"])
    engine.register_relation("escrows", ["item", "buyer"])
    engine.register_relation("ratings", ["seller", "score"])

    trusted_sale = engine.submit(
        "SELECT listings.item, listings.seller, bids.buyer, ratings.score "
        "FROM listings, bids, escrows, ratings "
        "WHERE listings.item = bids.item AND bids.buyer = escrows.buyer "
        "AND listings.seller = ratings.seller"
    )
    active_sellers = engine.submit(
        "SELECT DISTINCT listings.seller FROM listings, bids "
        "WHERE listings.item = bids.item"
    )

    rng = random.Random(5)
    sellers = [f"seller-{i}" for i in range(6)]
    buyers = [f"buyer-{i}" for i in range(10)]
    items = [f"item-{i}" for i in range(20)]

    for item in items:
        engine.publish("listings", (item, rng.choice(sellers), rng.randint(5, 500)))
    for seller in sellers:
        engine.publish("ratings", (seller, rng.randint(1, 5)))
    for _ in range(60):
        item = rng.choice(items)
        buyer = rng.choice(buyers)
        engine.publish("bids", (item, buyer, rng.randint(5, 500)))
        if rng.random() < 0.4:
            engine.publish("escrows", (item, buyer))

    print(f"published {engine.published_tuples} tuples, "
          f"{engine.total_answers} answers delivered\n")

    print("trusted sales (listing + bid + escrow + seller rating):")
    for item, seller, buyer, score in trusted_sale.values()[:10]:
        print(f"  {item}: {seller} (rating {score}) -> {buyer}")
    if trusted_sale.count > 10:
        print(f"  ... and {trusted_sale.count - 10} more")

    print("\nsellers with at least one bid (DISTINCT):")
    for (seller,) in sorted(active_sellers.distinct_values()):
        print(f"  {seller}")

    # Lower-level load balancing (Figure 9): one more explicit round.
    before = engine.storage_distribution(current=True)[0]
    moves = engine.rebalance()
    after = engine.storage_distribution(current=True)[0]
    print(f"\nid movement: {moves} node(s) moved this round; "
          f"peak storage {before} -> {after} items")

    summary = engine.metrics_summary()
    participating = summary["participating_nodes"]
    print(f"participating nodes: {participating:g} / {summary['nodes']:g}")


if __name__ == "__main__":
    main()
