"""Tests for the identifier space and circular-interval arithmetic."""

import random

import pytest

from repro.dht.hashing import IdentifierSpace
from repro.errors import ConfigurationError


class TestIdentifierSpace:
    def test_size(self):
        assert IdentifierSpace(8).size == 256
        assert IdentifierSpace(16).size == 65536

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            IdentifierSpace(0)
        with pytest.raises(ConfigurationError):
            IdentifierSpace(200)

    def test_hash_is_deterministic_and_in_range(self):
        space = IdentifierSpace(32)
        first = space.hash_key("R.a")
        second = space.hash_key("R.a")
        assert first == second
        assert 0 <= first < space.size

    def test_different_keys_differ(self):
        space = IdentifierSpace(64)
        assert space.hash_key("R.a=1") != space.hash_key("R.a=2")

    def test_random_identifier_respects_seed(self):
        space = IdentifierSpace(32)
        a = space.random_identifier(random.Random(5))
        b = space.random_identifier(random.Random(5))
        assert a == b

    def test_distance_is_clockwise(self):
        space = IdentifierSpace(8)
        assert space.distance(10, 20) == 10
        assert space.distance(20, 10) == 246  # wraps around
        assert space.distance(7, 7) == 0

    def test_in_interval_default_bounds(self):
        space = IdentifierSpace(8)
        # (start, end] semantics
        assert space.in_interval(15, 10, 20)
        assert space.in_interval(20, 10, 20)
        assert not space.in_interval(10, 10, 20)
        assert not space.in_interval(25, 10, 20)

    def test_in_interval_wrapping(self):
        space = IdentifierSpace(8)
        assert space.in_interval(3, 250, 10)
        assert space.in_interval(255, 250, 10)
        assert not space.in_interval(100, 250, 10)

    def test_in_interval_degenerate_full_circle(self):
        space = IdentifierSpace(8)
        assert space.in_interval(5, 7, 7)
        assert space.in_interval(7, 7, 7, inclusive_end=True)
        assert not space.in_interval(
            7, 7, 7, inclusive_start=False, inclusive_end=False
        )

    def test_midpoint(self):
        space = IdentifierSpace(8)
        assert space.midpoint(0, 10) == 5
        assert space.midpoint(250, 6) == 0  # wraps: distance 12, half 6 -> 256 % 256

    def test_power_step(self):
        space = IdentifierSpace(8)
        assert space.power_step(10, 3) == 18
        assert space.power_step(250, 3) == 2
        with pytest.raises(ConfigurationError):
            space.power_step(0, 8)

    def test_equality(self):
        assert IdentifierSpace(16) == IdentifierSpace(16)
        assert IdentifierSpace(16) != IdentifierSpace(32)
