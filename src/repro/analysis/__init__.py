"""repro-lint: AST-based static analysis for the engine's own invariants.

Generic linters cannot check what this project actually relies on — that
the simulated core stays deterministic, that every protocol message is
dispatched and traffic-accounted, that metrics counters reach the result
schema, that store backends honour the contract ``make_store`` promises,
and that library errors stay inside the :class:`~repro.errors.ReproError`
hierarchy.  This package machine-checks those invariants on every PR::

    python -m repro.analysis check            # human output
    python -m repro.analysis check --format json
    python -m repro.analysis list             # shipped rules

See :mod:`repro.analysis.rules` for how to add a rule and
:mod:`repro.lint` for the allowlist decorator.
"""

from __future__ import annotations

from repro.analysis.base import Finding, Rule, SourceFile
from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.driver import AnalysisReport, analyze, select_rules
from repro.analysis.project import Project, default_package_root
from repro.analysis.rules import ALL_RULES, rules_by_name

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "analyze",
    "apply_baseline",
    "default_package_root",
    "fingerprint",
    "load_baseline",
    "rules_by_name",
    "select_rules",
    "write_baseline",
]
