"""Core datatypes of the static-analysis suite.

A :class:`Rule` inspects the parsed project (see
:class:`~repro.analysis.project.Project`) and yields :class:`Finding`
objects.  Rules never mutate anything and never import the modules they
inspect — everything works on :mod:`ast` trees, so a broken tree can still
be analyzed and the analyzer can run on fixture trees that are not
importable packages.

Suppression happens in two layers, both handled by the driver:

* **allowlist** — a ``# repro: allow[rule-id]`` trailing comment on the
  offending line, a ``# repro: allow-file[rule-id]`` comment anywhere in the
  file, or a ``@lint_allow("rule-id")`` decorator on the enclosing function
  or class (see :mod:`repro.lint`),
* **baseline** — a committed JSON file of fingerprinted pre-existing
  findings (see :mod:`repro.analysis.baseline`); new code cannot add to it
  without an explicit ``--write-baseline`` run.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.project import Project

#: Marker comment syntax: ``# repro: allow[rule-a, rule-b] optional reason``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")
_ALLOW_FILE_RE = re.compile(r"#\s*repro:\s*allow-file\[([^\]]+)\]")

#: Name of the runtime no-op decorator recognised as an allowlist marker.
LINT_ALLOW_DECORATOR = "lint_allow"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``suppressed_by`` is ``None`` for an active finding, or the suppression
    layer (``"allowlist"`` / ``"baseline"``) that silenced it.
    """

    rule: str
    path: str  # path relative to the analyzed package root, POSIX separators
    line: int
    message: str
    suppressed_by: Optional[str] = None

    @property
    def active(self) -> bool:
        """Whether the finding should fail the check."""
        return self.suppressed_by is None

    def suppressed(self, layer: str) -> "Finding":
        """A copy of this finding marked as suppressed by ``layer``."""
        return replace(self, suppressed_by=layer)

    def render(self) -> str:
        """Human-readable one-line rendering (``path:line: [rule] message``)."""
        note = f"  (suppressed: {self.suppressed_by})" if self.suppressed_by else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{note}"


def _decorator_allowed_rules(node: ast.AST) -> Set[str]:
    """Rule ids exempted by ``@lint_allow(...)`` decorators on ``node``."""
    rules: Set[str] = set()
    decorators = getattr(node, "decorator_list", [])
    for decorator in decorators:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != LINT_ALLOW_DECORATOR:
            continue
        for arg in decorator.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                rules.add(arg.value.strip())
    return rules


@dataclass
class SourceFile:
    """One parsed source file plus its allowlist annotations."""

    rel: str  # POSIX path relative to the analyzed package root
    text: str
    tree: ast.Module
    #: line number -> rule ids allowed on that line (trailing comments)
    line_allows: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids allowed for the whole file
    file_allows: Set[str] = field(default_factory=set)
    #: (first_line, last_line) spans exempted per rule id by ``@lint_allow``
    span_allows: List[Tuple[int, int, Set[str]]] = field(default_factory=list)

    @classmethod
    def parse(cls, rel: str, text: str) -> "SourceFile":
        """Parse ``text`` and collect every allowlist marker it carries."""
        tree = ast.parse(text)
        line_allows: Dict[int, Set[str]] = {}
        file_allows: Set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _ALLOW_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                line_allows.setdefault(lineno, set()).update(r for r in rules if r)
            match = _ALLOW_FILE_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                file_allows.update(r for r in rules if r)
        span_allows: List[Tuple[int, int, Set[str]]] = []
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                rules = _decorator_allowed_rules(node)
                if rules:
                    last = max(
                        (n.lineno for n in ast.walk(node) if hasattr(n, "lineno")),
                        default=node.lineno,
                    )
                    span_allows.append((node.lineno, last, rules))
        return cls(
            rel=rel,
            text=text,
            tree=tree,
            line_allows=line_allows,
            file_allows=file_allows,
            span_allows=span_allows,
        )

    def is_allowed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is allowlisted at ``line`` of this file."""
        if rule in self.file_allows:
            return True
        if rule in self.line_allows.get(line, ()):  # trailing comment
            return True
        return any(
            first <= line <= last and rule in rules
            for first, last, rules in self.span_allows
        )


class Rule(abc.ABC):
    """One project invariant, checked over the parsed project."""

    #: Stable identifier used in findings, allowlist markers and ``--rules``.
    name: str = "abstract"
    #: One-line description shown by ``--list``.
    description: str = ""

    @abc.abstractmethod
    def check(self, project: "Project") -> Iterator[Finding]:
        """Yield a finding per violation found in ``project``."""

    # Convenience used by every concrete rule -----------------------------
    def finding(self, sf: SourceFile, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node`` of ``sf``."""
        line = getattr(node, "lineno", 1)
        return Finding(rule=self.name, path=sf.rel, line=line, message=message)
