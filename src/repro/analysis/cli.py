"""Command-line interface: ``python -m repro.analysis check``.

Exit codes: ``0`` — every checked invariant holds; ``1`` — at least one
active finding; ``2`` — the analyzer itself was driven with invalid inputs
(unknown rule, unreadable tree, broken baseline).

Output formats:

* ``text`` (default) — one ``path:line: [rule] message`` per finding,
* ``json`` — a machine-readable document (see
  :meth:`~repro.analysis.driver.AnalysisReport.to_dict`),
* ``github`` — GitHub Actions workflow commands, so CI failures annotate
  the offending file and line in the diff view.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import write_baseline
from repro.analysis.driver import AnalysisReport, analyze
from repro.analysis.project import default_package_root
from repro.analysis.rules import ALL_RULES
from repro.errors import AnalysisError


def _render_text(report: AnalysisReport, verbose: bool) -> str:
    lines: List[str] = []
    for finding in report.active:
        lines.append(finding.render())
    if verbose:
        for finding in report.suppressed:
            lines.append(finding.render())
    lines.append(
        f"repro-lint: {report.files_analyzed} files, "
        f"{len(report.rules_run)} rules, "
        f"{len(report.active)} finding(s), "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def _render_github(report: AnalysisReport, path_prefix: str) -> str:
    lines: List[str] = []
    for finding in report.active:
        path = f"{path_prefix}/{finding.path}" if path_prefix else finding.path
        message = finding.message.replace("\n", " ")
        lines.append(
            f"::error file={path},line={finding.line},"
            f"title=repro-lint {finding.rule}::{message}"
        )
    lines.append(
        f"repro-lint: {len(report.active)} finding(s) over "
        f"{report.files_analyzed} files"
    )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checks for the repro engine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="run the invariant rules over a source tree"
    )
    check.add_argument(
        "path",
        nargs="?",
        default=None,
        help=(
            "package root to analyze (a directory laid out like the repro "
            "package); defaults to the installed repro package itself"
        ),
    )
    check.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    check.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    check.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline JSON path (default: <package root>/analysis/"
            "baseline.json when present)"
        ),
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    check.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "grandfather the current findings into the baseline file and "
            "exit 0"
        ),
    )
    check.add_argument(
        "--github-path-prefix",
        default="src/repro",
        help=(
            "path prepended to finding locations in --format github "
            "annotations (default: src/repro)"
        ),
    )
    check.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also list suppressed (allowlisted/baselined) findings",
    )

    listing = sub.add_parser("list", help="list the shipped rules")
    listing.set_defaults(command="list")
    return parser


def _resolve_baseline(
    package_root: Path, arg: Optional[str], disabled: bool
) -> Optional[Path]:
    if disabled:
        return None
    if arg is not None:
        return Path(arg)
    default = package_root / "analysis" / "baseline.json"
    return default if default.exists() else None


def run_check(args: argparse.Namespace) -> int:
    package_root = (
        Path(args.path) if args.path is not None else default_package_root()
    )
    rule_names = (
        [part.strip() for part in args.rules.split(",") if part.strip()]
        if args.rules
        else None
    )
    baseline_path = _resolve_baseline(
        package_root, args.baseline, args.no_baseline
    )
    if args.write_baseline:
        # Findings surviving the allowlist become the new grandfathered set.
        report = analyze(package_root, rule_names, baseline_path=None)
        target = baseline_path or package_root / "analysis" / "baseline.json"
        count = write_baseline(Path(target), report.active)
        print(f"repro-lint: baselined {count} fingerprint(s) to {target}")
        return 0

    report = analyze(package_root, rule_names, baseline_path)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    elif args.format == "github":
        print(_render_github(report, args.github_path_prefix.rstrip("/")))
    else:
        print(_render_text(report, args.verbose))
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            for rule in ALL_RULES:
                print(f"{rule.name}: {rule.description}")
            return 0
        return run_check(args)
    except AnalysisError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
