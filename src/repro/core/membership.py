"""Unified state re-homing for dynamic ring membership.

The engine used to support exactly one topology mutation — id movement
(Figure 9) — through an ad-hoc ``_rehome_state`` helper.  This module
generalises that machinery into a :class:`MembershipManager` that computes
ownership deltas for *any* ring mutation (join, graceful leave, crash, id
movement) and re-homes every kind of node-local state:

* stored value-level tuples (:class:`~repro.data.store.TupleStore`),
* attribute-level tuple-table entries
  (:class:`~repro.core.altt.AttributeLevelTupleTable`),
* stored input and rewritten queries
  (:class:`~repro.core.node.QueryTable`),
* replicated handle registrations of the query lifecycle subsystem
  (:class:`~repro.core.lifecycle.HandleRegistration`) — these live on the
  ring successor of each query's *owner* rather than at the hash of a key,
  so the manager routes them through the lifecycle layer's
  ``registration_home`` instead of ``owner_of``.

Re-homing is an out-of-band state transfer (it does not generate simulated
network messages — the same modelling choice the id-movement path always
made), but its cost is measured: every membership event records how many
items and how many estimated payload bytes moved (or, for crashes, were
lost) into :class:`~repro.metrics.collectors.ChurnStats`, which is what the
``node-churn`` scenario and ``benchmarks/bench_churn.py`` report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence

from repro.dht.chord import ChordRing
from repro.errors import EngineError
from repro.metrics.collectors import ChurnStats, LoadTracker, MembershipEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.node import RehomedItem, RJoinNode


@dataclass(frozen=True)
class RehomeReport:
    """What one re-homing pass moved (or destroyed)."""

    records_moved: int = 0
    bytes_moved: int = 0
    records_lost: int = 0
    bytes_lost: int = 0
    #: items moved per state kind ("input" | "rewritten" | "tuple" | "altt")
    moved_by_kind: Optional[Dict[str, int]] = None

    @property
    def records_touched(self) -> int:
        """Moved plus lost records."""
        return self.records_moved + self.records_lost


def estimate_item_bytes(item: "RehomedItem") -> int:
    """A deterministic, cheap estimate of one re-homed item's payload size.

    The simulation never serialises state, so the estimate is the length of
    the item's key plus the ``repr`` of the values it carries — stable across
    runs and good enough to compare re-homing cost between churn schedules.
    """
    size = len(item.key_text)
    payload = item.payload
    kind = item.kind
    if kind == "tuple":
        size += len(repr(payload.tuple.values))
    elif kind == "altt":
        tup, _received_at = payload
        size += len(repr(tup.values))
    elif kind in ("input", "rewritten"):
        size += len(repr(payload.state.query))
        # A shared record carries its extra subscribers' registrations too.
        if payload.state.extra_subscribers:
            size += len(repr(payload.state.extra_subscribers))
    else:
        size += len(repr(payload))
    return size


class MembershipManager:
    """Computes ownership deltas and re-homes state after ring mutations.

    The manager owns no topology decisions — callers mutate the
    :class:`~repro.dht.chord.ChordRing` first (add/remove/move a node) and
    then ask the manager to make the application state consistent with the
    new ownership map.  Three entry points cover every mutation:

    * :meth:`rehome_misplaced` — after id movement or a join: scan the given
      nodes (or all of them) and move items whose key changed owner,
    * :meth:`handoff` — after a graceful leave: the departed node's entire
      state is handed to the current owners,
    * :meth:`discard` — after a crash: the dead node's state is destroyed
      and accounted as lost.
    """

    def __init__(
        self,
        ring: ChordRing,
        nodes: Dict[str, "RJoinNode"],
        loads: LoadTracker,
        churn: ChurnStats,
        clock: Callable[[], float],
    ) -> None:
        self.ring = ring
        self.nodes = nodes
        self.loads = loads
        self.churn = churn
        self._clock = clock
        #: ``query_id -> address`` of the node that must hold the query's
        #: replicated handle registration (None: no lifecycle layer wired,
        #: or the query is gone).  Set by the engine once the
        #: :class:`~repro.core.lifecycle.QueryLifecycleManager` exists.
        self.registration_home: Optional[
            Callable[[str], Optional[str]]
        ] = None

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------
    def owner_of(self, key_text: str) -> str:
        """Address of the node currently responsible for ``key_text``."""
        return self.ring.owner_of_key(key_text).address

    # ------------------------------------------------------------------
    # re-homing passes
    # ------------------------------------------------------------------
    def rehome_misplaced(
        self,
        addresses: Optional[Sequence[str]] = None,
        kind: str = "move",
        subject: str = "",
    ) -> RehomeReport:
        """Move misplaced items from ``addresses`` (default: every node).

        A join only displaces state on the new node's successor, so the
        caller can restrict the scan; id movement touches arbitrary arcs and
        scans everything.  Records one :class:`MembershipEvent` when any
        state moved (or unconditionally for joins/leaves, which are events
        even when they move nothing).
        """
        if addresses is None:
            scan: Iterable["RJoinNode"] = list(self.nodes.values())
        else:
            scan = [self.nodes[address] for address in addresses]
        pending: List["RehomedItem"] = []
        for node in scan:
            pending.extend(
                node.extract_misplaced(self.owner_of, self.registration_home)
            )
        report = self._deliver(pending)
        always_record = kind != "move"
        if always_record or report.records_moved:
            self._record(kind, subject, report)
        return report

    def handoff(
        self, departed: "RJoinNode", subject: Optional[str] = None
    ) -> RehomeReport:
        """Hand every item of a departed node to the current owners.

        ``departed`` must already be out of the ring and the engine's node
        table; its keys now resolve to the surviving owners.
        """
        if self.ring.has_address(departed.address):
            raise EngineError(
                f"cannot hand off state of {departed.address!r}: the node is "
                "still part of the ring"
            )
        report = self._deliver(departed.extract_all())
        self._record("leave", subject or departed.address, report)
        return report

    def discard(
        self, crashed: "RJoinNode", subject: Optional[str] = None
    ) -> RehomeReport:
        """Destroy a crashed node's state and account it as lost.

        The load tracker is told about the destroyed rewritten queries and
        tuples so the network-wide *current storage* aggregate keeps matching
        the live state of the surviving nodes.
        """
        items = crashed.extract_all()
        records_lost = len(items)
        bytes_lost = sum(estimate_item_bytes(item) for item in items)
        queries_lost = sum(1 for item in items if item.kind == "rewritten")
        tuples_lost = sum(1 for item in items if item.kind == "tuple")
        if queries_lost:
            self.loads.record_query_dropped(crashed.address, queries_lost)
        if tuples_lost:
            self.loads.record_tuple_dropped(crashed.address, tuples_lost)
        report = RehomeReport(records_lost=records_lost, bytes_lost=bytes_lost)
        self._record("crash", subject or crashed.address, report)
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _deliver(self, pending: List["RehomedItem"]) -> RehomeReport:
        """Hand every extracted item to the node owning its key.

        Handle registrations route through the lifecycle layer's
        ``registration_home`` (they live at the successor of their query's
        owner, not at the hash of a key); a registration whose query has
        disappeared in the meantime is dropped rather than delivered.
        """
        moved_by_kind: Dict[str, int] = {}
        bytes_moved = 0
        delivered = 0
        # Group the consignment per owning node first, so each target adopts
        # its share through the batch path (one store transaction per node)
        # instead of item-at-a-time.
        by_owner: Dict[str, List["RehomedItem"]] = {}
        for item in pending:
            if item.kind == "registration":
                home = (
                    self.registration_home(item.key_text)
                    if self.registration_home is not None
                    else None
                )
                if home is None:
                    continue
                owner = home
            else:
                owner = self.owner_of(item.key_text)
            if owner not in self.nodes:
                raise EngineError(
                    f"re-homing target {owner!r} for key {item.key_text!r} "
                    "has no application-layer node registered"
                )
            by_owner.setdefault(owner, []).append(item)
            delivered += 1
            moved_by_kind[item.kind] = moved_by_kind.get(item.kind, 0) + 1
            bytes_moved += estimate_item_bytes(item)
        for owner, items in by_owner.items():
            self.nodes[owner].accept_rehomed_batch(items)
        return RehomeReport(
            records_moved=delivered,
            bytes_moved=bytes_moved,
            moved_by_kind=moved_by_kind,
        )

    def _record(self, kind: str, subject: str, report: RehomeReport) -> None:
        self.churn.record(
            MembershipEvent(
                kind=kind,
                address=subject,
                at=self._clock(),
                records_rehomed=report.records_moved,
                bytes_rehomed=report.bytes_moved,
                records_lost=report.records_lost,
                bytes_lost=report.bytes_lost,
            )
        )
