"""Figure 2 — effect of taking RIC information into account.

Regenerates the three panels of Figure 2: total messages per node (with the
"Request RIC" series), query-processing load per node and storage load per
node, for the Worst / Random / RJoin indexing strategies, after increasing
numbers of incoming tuples.

Expected shape (paper): Worst ≫ Random ≫ RJoin on every metric, with the
RIC-request traffic being only a part of RJoin's total.  Set
``REPRO_FULL_SCALE=1`` for the paper-scale run (10³ nodes, 2·10⁴ queries).
"""

import pytest

from repro.experiments.figures import figure2


@pytest.mark.benchmark(group="figure2")
def test_figure2_ric_effect(benchmark):
    result = benchmark.pedantic(figure2, rounds=1, iterations=1)
    print()
    print(result.to_text())

    last = -1
    # Panel (a): traffic per node — the bad plans cost more, and RJoin's RIC
    # requests are only a fraction of its total traffic.
    assert (
        result.series["worst_messages_per_node"][last]
        > result.series["rjoin_messages_per_node"][last]
    )
    assert (
        result.series["rjoin_ric_messages_per_node"][last]
        <= result.series["rjoin_messages_per_node"][last]
    )
    # Panel (b): query processing load ordering Worst >= Random >= RJoin.
    assert (
        result.series["worst_qpl_per_node"][last]
        >= result.series["random_qpl_per_node"][last]
        >= result.series["rjoin_qpl_per_node"][last]
    )
    # Panel (c): storage load ordering Worst >= Random >= RJoin.
    assert (
        result.series["worst_storage_per_node"][last]
        >= result.series["random_storage_per_node"][last]
        >= result.series["rjoin_storage_per_node"][last]
    )
    # Load grows with the number of incoming tuples for every strategy.
    for name in ("worst_qpl_per_node", "random_qpl_per_node", "rjoin_qpl_per_node"):
        series = result.series[name]
        assert series == sorted(series)
