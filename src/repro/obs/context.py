"""The :class:`Observability` facade the engine and messaging layer share.

One object bundles the tracer (span propagation) and the metrics registry
(histograms/counters/gauges) and exposes exactly the hooks the hot paths
need.  The facade is ``Optional`` everywhere it is threaded through —
``RJoinConfig.observability="off"`` leaves it ``None`` and every call site
guards with one ``is not None`` check, so the off path costs a single
pointer comparison (the established ``NodeContext`` callback idiom).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

from repro.errors import ObservabilityError
from repro.obs.instruments import MetricsRegistry
from repro.obs.trace import (
    DEFAULT_MAX_SPANS,
    JsonlSink,
    MemorySink,
    Span,
    SpanSink,
    TraceContext,
    Tracer,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.messages import Envelope


class Observability:
    """Tracing + metrics for one engine instance.

    Parameters
    ----------
    clock:
        The engine's logical clock (``transport.now``).
    wall_clock:
        Whether spans additionally record wall-clock service time
        (enabled on the asyncio runtime, disabled on the deterministic
        kernel so traces stay byte-identical across reruns).
    trace_path:
        Stream spans to this JSONL file as they finish; ``None`` retains
        them in memory (readable via :attr:`spans`, dumpable via
        :meth:`write_trace`).
    max_spans:
        Bound on retained/streamed spans (overflow is counted, not kept).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        wall_clock: bool = False,
        trace_path: Optional[str] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.sink: SpanSink = (
            MemorySink(max_spans)
            if trace_path is None
            else JsonlSink(trace_path, max_spans)
        )
        self.trace_path = trace_path
        self.tracer = Tracer(self.sink, clock=clock, wall_clock=wall_clock)
        self.registry = MetricsRegistry()
        # The per-delivery hooks run tens of thousands of times per second;
        # resolving their instruments once keeps the hot path to attribute
        # loads instead of registry dictionary lookups.
        self._hop_delay = self.registry.histogram("hop_delay")
        self._inbox_depth = self.registry.histogram("inbox_depth")
        self._service_time = self.registry.histogram("handler_service_time_us")
        self._answer_latency = self.registry.histogram("answer_latency")
        self._store_probe = self.registry.histogram("store_probe_batch")
        self._pending_events = self.registry.gauge("pending_events")
        self._node_deliveries = self.registry.counter("node_deliveries")
        self._deliveries_by_kind = self.registry.counter("deliveries_by_kind")
        self._key_load = self.registry.counter("key_load")
        self._ric_chain = self.registry.counter("ric_chain")
        self._dropped = self.registry.counter("dropped_deliveries")
        # The delivery pair below inlines ``Tracer.begin_span``/``end_span``
        # (see its docstring), so it shares the tracer's active-context
        # stack and wall-clock bookkeeping directly.
        self._stack: List[TraceContext] = self.tracer._stack
        self._wall_starts: List[float] = self.tracer._wall_starts
        self._wall = wall_clock
        self._sink_record = self.sink.record
        self._span_ids = self.tracer._span_ids
        self._trace_starts = self.tracer._trace_starts

    # ------------------------------------------------------------------
    # engine-side hooks
    # ------------------------------------------------------------------
    @contextmanager
    def operation(self, name: str, trace_id: str, node: str) -> Iterator[None]:
        """Open a root span around one engine operation (publish/submit/...).

        Every message sent inside the block joins trace ``trace_id``.
        """
        context = self.tracer.new_trace(trace_id)
        with self.tracer.span(context, name=name, node=node):
            yield

    def record_answer_latency(self, delivered_at: float) -> None:
        """Record publish/submit -> answer latency for the active trace.

        Runs once per delivered answer; reads the tracer's active-context
        stack and trace-start table directly (pre-bound in ``__init__``).
        """
        stack = self._stack
        if not stack:
            return
        start = self._trace_starts.get(stack[-1].trace_id)
        if start is None:
            return
        self._answer_latency.record(delivered_at - start)

    # ------------------------------------------------------------------
    # messaging-side hooks
    # ------------------------------------------------------------------
    def context_for(self, envelope: "Envelope") -> TraceContext:
        """The trace context a freshly posted envelope should carry.

        Inside an active span the message is its child; outside (engine
        housekeeping, membership repair) it roots a fresh single-message
        trace so no delivery is ever unattributed.  Runs once per posted
        message, so the child derivation is inlined against the pre-bound
        tracer internals instead of going through ``Tracer.child``.
        """
        stack = self._stack
        if not stack:
            return self.tracer.new_trace(f"msg-{envelope.message.message_id}")
        parent = stack[-1]
        return TraceContext(
            parent.trace_id, next(self._span_ids), parent.span_id, parent.hop + 1
        )

    def delivery_begin(self, envelope: "Envelope", pending: int) -> Span:
        """Open the per-delivery span and record the transit instruments.

        Explicit begin/end (rather than a context manager) because this
        runs once per message delivery — the generator frames of a
        ``@contextmanager`` pair were the single largest ``on``-mode cost
        in the overhead benchmark.  The span open/close is inlined here
        (instead of calling ``Tracer.begin_span``/``end_span``) for the
        same reason, and the logical clock is never read: handlers are
        synchronous on both runtimes, so the span starts *and* ends at
        ``envelope.delivered_at``.  The caller owns the ``try``/``finally``
        that guarantees :meth:`delivery_end`.
        """
        context = envelope.trace
        if context is None:
            # Stamped deliveries are the invariant while observability is
            # on; tolerate foreign envelopes (tests post hand-built ones).
            context = self.tracer.new_trace(f"msg-{envelope.message.message_id}")
        kind = envelope.kind
        node = envelope.destination
        sent_at = envelope.sent_at
        delivered = envelope.delivered_at
        self._hop_delay.record(delivered - sent_at)
        self._inbox_depth.record(float(pending))
        self._pending_events.set(float(pending))
        # Per-node / per-kind load counters, folded in here (rather than a
        # separate node-side hook) so one facade call covers the delivery.
        self._node_deliveries.inc(node)
        self._deliveries_by_kind.inc(kind)
        span = Span(
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_id=context.parent_id,
            name=kind,
            node=node,
            start=delivered,
            end=delivered,
            sent_at=sent_at,
            hops=envelope.hops,
            hop=context.hop,
        )
        self._stack.append(context)
        if self._wall:
            self._wall_starts.append(perf_counter())
        return span

    def delivery_end(self, span: Span) -> None:
        """Close a span opened by :meth:`delivery_begin` (inlined pair)."""
        self._stack.pop()
        if self._wall:
            wall = (perf_counter() - self._wall_starts.pop()) * 1e6
            span.wall_us = wall
            self._service_time.record(wall)
        self._sink_record(span)

    def record_dropped(self, envelope: "Envelope") -> None:
        """Count a delivery the network dropped (no handler registered)."""
        self._dropped.inc(envelope.kind)

    # ------------------------------------------------------------------
    # node-side hooks (via NodeContext.obs)
    # ------------------------------------------------------------------
    def record_key_load(self, key_text: str) -> None:
        """Per-indexing-key arrival counter (hot-key telemetry)."""
        self._key_load.inc(key_text)

    def record_ric(self, phase: str) -> None:
        """RIC chain telemetry (``request`` / ``reply``)."""
        self._ric_chain.inc(phase)

    def record_store_probe(self, result_size: int) -> None:
        """Result size of one set-at-a-time store batch probe."""
        self._store_probe.record(float(result_size))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """The retained spans (memory sink only)."""
        if isinstance(self.sink, MemorySink):
            return self.sink.spans
        raise ObservabilityError(
            "spans are streamed to "
            f"{self.trace_path!r}; read them back with repro.obs.load_spans"
        )

    def write_trace(self, path: str) -> int:
        """Dump the retained spans as JSONL; returns the span count."""
        if isinstance(self.sink, MemorySink):
            return self.sink.write_jsonl(path)
        raise ObservabilityError(
            "spans already stream to "
            f"{self.trace_path!r}; copy that file instead of re-dumping"
        )

    def close(self) -> None:
        """Flush and release the span sink (idempotent)."""
        self.sink.flush()
        self.sink.close()
