"""Fixture schema declaration with one stale entry."""

SUMMARY_SCHEMA = (
    "joins",
    # VIOLATION: declared but metrics_summary never emits it.
    "stale_key",
)
