"""Ranked-node distributions and plain-text reporting.

The figures of Section 8 plot per-node load against "ranked nodes": nodes are
sorted by decreasing load, optionally bucketed in groups of 100 ("Ranked
nodes (x100)").  These helpers turn per-node counters into those series and
render small text tables so that the benchmark harness can print the rows the
paper reports.
"""

from __future__ import annotations

import math

from repro.errors import MetricsError
from typing import Dict, Iterable, List, Mapping, Sequence


def ranked_distribution(values: Iterable[float]) -> List[float]:
    """Sort per-node values in decreasing order (the x-axis is the rank)."""
    return sorted(values, reverse=True)


def group_ranked(
    values: Iterable[float], group_size: int = 100, aggregate: str = "mean"
) -> List[float]:
    """Aggregate a ranked distribution into buckets of ``group_size`` nodes.

    ``aggregate`` is ``"mean"`` or ``"sum"``.  This mirrors the paper's
    "Ranked nodes (x100)" axes, where each plotted point summarises 100
    consecutively ranked nodes.
    """
    ranked = ranked_distribution(values)
    if group_size <= 0:
        raise MetricsError("group_size must be positive")
    groups: List[float] = []
    for start in range(0, len(ranked), group_size):
        chunk = ranked[start : start + group_size]
        if aggregate == "sum":
            groups.append(float(sum(chunk)))
        elif aggregate == "mean":
            groups.append(float(sum(chunk)) / len(chunk))
        else:
            raise MetricsError(f"unknown aggregate {aggregate!r}")
    return groups


def participation_count(values: Iterable[float], threshold: float = 0.0) -> int:
    """Number of nodes whose load exceeds ``threshold`` (participating nodes)."""
    return sum(1 for value in values if value > threshold)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Simple nearest-rank percentile of ``values`` (fraction in [0, 1])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def load_imbalance(values: Sequence[float]) -> float:
    """Ratio between the maximum and the mean per-node load (1.0 = perfectly even)."""
    values = list(values)
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    return max(values) / mean


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render a small, aligned plain-text table (used by the bench harness)."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(col) for col in columns]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def series_summary(
    series: Mapping[str, Sequence[float]],
) -> Dict[str, Dict[str, float]]:
    """Summarise named series with min/max/mean (used in EXPERIMENTS.md tables)."""
    summary: Dict[str, Dict[str, float]] = {}
    for name, values in series.items():
        values = list(values)
        if not values:
            summary[name] = {"min": 0.0, "max": 0.0, "mean": 0.0}
            continue
        summary[name] = {
            "min": float(min(values)),
            "max": float(max(values)),
            "mean": float(sum(values)) / len(values),
        }
    return summary
