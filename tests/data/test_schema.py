"""Tests for relation schemas and the catalog."""

import pytest

from repro.data.schema import AttributeRef, Catalog, RelationSchema, ensure_catalog
from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError


class TestRelationSchema:
    def test_basic_properties(self):
        schema = RelationSchema("R", ["a", "b", "c"])
        assert schema.name == "R"
        assert schema.arity == 3
        assert schema.attributes == ("a", "b", "c")

    def test_position_lookup(self):
        schema = RelationSchema("R", ["a", "b", "c"])
        assert schema.position_of("a") == 0
        assert schema.position_of("c") == 2

    def test_unknown_attribute_raises(self):
        schema = RelationSchema("R", ["a"])
        with pytest.raises(UnknownAttributeError):
            schema.position_of("zzz")

    def test_has_attribute(self):
        schema = RelationSchema("R", ["a", "b"])
        assert schema.has_attribute("a")
        assert not schema.has_attribute("x")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ["a"])

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_attribute_refs(self):
        schema = RelationSchema("R", ["a", "b"])
        refs = schema.attribute_refs()
        assert refs == [AttributeRef("R", "a"), AttributeRef("R", "b")]

    def test_equality_and_hash(self):
        first = RelationSchema("R", ["a", "b"])
        second = RelationSchema("R", ["a", "b"])
        third = RelationSchema("R", ["a", "c"])
        assert first == second
        assert hash(first) == hash(second)
        assert first != third


class TestCatalog:
    def test_add_and_get(self):
        catalog = Catalog()
        catalog.add_relation("R", ["a"])
        assert catalog.get("R").arity == 1
        assert "R" in catalog
        assert len(catalog) == 1

    def test_unknown_relation_raises(self):
        catalog = Catalog()
        with pytest.raises(UnknownRelationError):
            catalog.get("missing")

    def test_conflicting_schema_rejected(self):
        catalog = Catalog()
        catalog.add_relation("R", ["a"])
        with pytest.raises(SchemaError):
            catalog.add_relation("R", ["a", "b"])

    def test_identical_reregistration_is_noop(self):
        catalog = Catalog()
        catalog.add_relation("R", ["a"])
        catalog.add_relation("R", ["a"])
        assert len(catalog) == 1

    def test_uniform_catalog_matches_paper_dimensions(self):
        catalog = Catalog.uniform(10, 10)
        assert len(catalog) == 10
        for schema in catalog:
            assert schema.arity == 10

    def test_validate_ref(self):
        catalog = Catalog.uniform(2, 2)
        catalog.validate_ref(AttributeRef("R0", "a1"))
        with pytest.raises(UnknownAttributeError):
            catalog.validate_ref(AttributeRef("R0", "zzz"))
        with pytest.raises(UnknownRelationError):
            catalog.validate_ref(AttributeRef("ZZ", "a0"))

    def test_relation_names_order(self):
        catalog = Catalog.uniform(3, 1)
        assert catalog.relation_names() == ["R0", "R1", "R2"]

    def test_ensure_catalog(self):
        catalog = ensure_catalog(None, [RelationSchema("R", ["a"])])
        assert "R" in catalog
        same = ensure_catalog(catalog)
        assert same is catalog

    def test_attribute_ref_ordering(self):
        assert AttributeRef("R", "a") < AttributeRef("R", "b")
        assert AttributeRef("R", "a") < AttributeRef("S", "a")
        assert str(AttributeRef("R", "a")) == "R.a"
