"""Query-lifecycle churn in the experiment layer.

Covers the :class:`~repro.experiments.config.QueryChurnSpec` schedule, the
runner integration (removal / re-submission between publications, composed
with node churn), the ``query-churn`` and ``owner-failover`` scenarios, the
v3 → v4 result-schema bump and — crucially — backward compatibility: v3
grid result files still load and ``report --diff`` works across schema
versions.
"""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import (
    ChurnSpec,
    ExperimentConfig,
    QueryChurnSpec,
)
from repro.experiments.parallel import diff_grids, load_cells
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import get_scenario, scenario_names
from repro.metrics.serialize import (
    RESULT_SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
    query_churn_from_dict,
    query_churn_to_dict,
    result_from_dict,
    result_to_dict,
)


def tiny_config(**overrides):
    params = dict(
        name="query-churn-test",
        num_nodes=12,
        num_queries=8,
        num_tuples=30,
        num_relations=4,
        attributes_per_relation=3,
        value_domain=5,
        join_arity=3,
        seed=11,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


class TestQueryChurnSpec:
    def test_defaults_disabled(self):
        spec = QueryChurnSpec()
        assert not spec.enabled
        assert spec.events_for(100) == []

    def test_events_schedule(self):
        spec = QueryChurnSpec(remove_every=10, start_after=5)
        assert spec.events_for(40) == [15, 25, 35]

    def test_negative_rate_rejected(self):
        with pytest.raises(ExperimentError):
            QueryChurnSpec(remove_every=-1)

    def test_unknown_target_rejected(self):
        with pytest.raises(ExperimentError):
            QueryChurnSpec(remove_every=5, target="loudest")

    def test_config_type_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(query_churn={"remove_every": 5})


class TestRunnerIntegration:
    def test_removal_and_resubmission_keep_population(self):
        result = run_experiment(
            tiny_config(query_churn=QueryChurnSpec(remove_every=10))
        )
        summary = result.summary
        assert summary["queries_removed"] == 3
        assert summary["active_queries"] == 8  # resubmitted each time
        assert summary["submitted_queries"] == 11
        assert summary["orphaned_state_records"] == 0

    def test_removal_without_resubmission_drains(self):
        result = run_experiment(
            tiny_config(
                query_churn=QueryChurnSpec(remove_every=10, resubmit=False)
            )
        )
        summary = result.summary
        assert summary["queries_removed"] == 3
        assert summary["active_queries"] == 5

    def test_min_queries_floor_is_respected(self):
        result = run_experiment(
            tiny_config(
                num_queries=2,
                query_churn=QueryChurnSpec(
                    remove_every=5, resubmit=False, min_queries=2
                ),
            )
        )
        assert result.summary["queries_removed"] == 0
        assert result.summary["active_queries"] == 2

    @pytest.mark.parametrize("target", ["oldest", "newest", "random"])
    def test_victim_targets_run_clean(self, target):
        result = run_experiment(
            tiny_config(
                query_churn=QueryChurnSpec(remove_every=15, target=target)
            )
        )
        assert result.summary["queries_removed"] == 2

    def test_composes_with_node_churn(self):
        result = run_experiment(
            tiny_config(
                query_churn=QueryChurnSpec(remove_every=10),
                churn=ChurnSpec(join_every=12, leave_every=20),
            )
        )
        summary = result.summary
        assert summary["queries_removed"] == 3
        assert summary["membership_events"] > 0
        assert summary["orphaned_state_records"] == 0

    def test_batch_mode_dispatches_query_churn(self):
        result = run_experiment(
            tiny_config(
                publish_mode="batch",
                batch_size=5,
                query_churn=QueryChurnSpec(remove_every=10),
            )
        )
        assert result.summary["queries_removed"] == 3

    def test_owner_failover_flag_threads_through(self):
        on = run_experiment(tiny_config(owner_failover=True))
        off = run_experiment(tiny_config(owner_failover=False))
        # static ring: the flag changes replication, not the answers
        assert on.summary["answers"] == off.summary["answers"]
        assert on.summary["failover_reregistrations"] == 0
        assert off.summary["failover_reregistrations"] == 0


class TestScenarios:
    def test_lifecycle_scenarios_registered(self):
        names = scenario_names()
        assert "query-churn" in names
        assert "owner-failover" in names

    def test_query_churn_variants(self):
        scenario = get_scenario("query-churn")
        labels = [v.label for v in scenario.variants(full_scale=False)]
        assert labels == ["stable", "remove", "churn", "churn+nodes"]
        churn_variant = scenario.variant_named("churn+nodes")
        config = scenario.config_for(churn_variant, seed=42)
        assert config.query_churn is not None and config.query_churn.enabled
        assert config.churn is not None and config.churn.enabled

    def test_owner_failover_axis(self):
        scenario = get_scenario("owner-failover")
        on = scenario.config_for(scenario.variant_named("failover"), seed=42)
        off = scenario.config_for(
            scenario.variant_named("no-failover"), seed=42
        )
        assert on.owner_failover is True
        assert off.owner_failover is False
        assert on.churn is not None and on.churn.crash_every > 0


class TestSerialization:
    def test_schema_version_bumped_for_query_lifecycle(self):
        assert RESULT_SCHEMA_VERSION >= 4

    def test_query_churn_round_trip(self):
        spec = QueryChurnSpec(
            remove_every=7,
            resubmit=False,
            start_after=3,
            target="random",
            min_queries=2,
        )
        assert query_churn_from_dict(query_churn_to_dict(spec)) == spec
        assert query_churn_to_dict(None) is None
        assert query_churn_from_dict(None) is None

    def test_config_round_trip_with_query_churn(self):
        config = tiny_config(
            query_churn=QueryChurnSpec(remove_every=5),
            owner_failover=False,
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored.query_churn == config.query_churn
        assert restored.owner_failover is False

    def test_v3_config_dict_still_loads(self):
        """A config dict written before the lifecycle fields existed."""
        data = config_to_dict(tiny_config())
        del data["query_churn"]
        del data["owner_failover"]
        restored = config_from_dict(data)
        assert restored.query_churn is None
        assert restored.owner_failover is True

    def test_v3_result_dict_still_loads(self):
        result = run_experiment(tiny_config(num_tuples=5, num_queries=2))
        data = result_to_dict(result)
        data["schema_version"] = 3
        del data["config"]["query_churn"]
        del data["config"]["owner_failover"]
        restored = result_from_dict(data)
        assert restored.config.num_nodes == 12
        assert restored.summary == result.summary


def _write_cell(directory, cell_id, payload):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{cell_id}.json").write_text(json.dumps(payload))


class TestCrossVersionDiff:
    def _payload(self, schema_version, qpl):
        config = config_to_dict(tiny_config(num_tuples=5, num_queries=2))
        if schema_version < 4:
            del config["query_churn"]
            del config["owner_failover"]
        return {
            "schema_version": schema_version,
            "cell": {
                "cell_id": "sc__v__rjoin__seed42",
                "scenario": "sc",
                "variant": "v",
                "strategy": "rjoin",
                "seed": 42,
            },
            "result": {
                "config": config,
                "summary": {"answers": 3.0},
                "derived": {"qpl_per_node": qpl},
            },
        }

    def test_diff_spans_schema_versions(self, tmp_path):
        """``report --diff`` pairs a v3 directory with a v4 directory."""
        dir_a = tmp_path / "v3"
        dir_b = tmp_path / "v4"
        _write_cell(dir_a, "sc__v__rjoin__seed42", self._payload(3, 10.0))
        _write_cell(
            dir_b,
            "sc__v__rjoin__seed42",
            self._payload(RESULT_SCHEMA_VERSION, 12.5),
        )
        assert set(load_cells(dir_a)) == {"sc__v__rjoin__seed42"}
        diff = diff_grids(dir_a, dir_b, ["qpl_per_node"])
        assert diff["only_in_a"] == [] and diff["only_in_b"] == []
        pair = diff["cells"][0]["metrics"]["qpl_per_node"]
        assert pair["a"] == 10.0
        assert pair["b"] == 12.5
        assert pair["delta"] == pytest.approx(2.5)
