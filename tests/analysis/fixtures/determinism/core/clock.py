"""Seeded determinism-purity violations (fixture tree, never imported)."""

import random
import time

from repro.lint import lint_allow


def wall_clock_now():
    return time.time()  # VIOLATION: wall clock inside the simulated core


def global_random_draw():
    return random.random()  # VIOLATION: interpreter-global RNG state


def unseeded_rng():
    return random.Random()  # VIOLATION: Random() without a seed


def iterate_unordered(items):
    seen = set()
    for item in items:
        seen.add(item)
    order = []
    for value in seen:  # VIOLATION: unordered-set iteration order
        order.append(value)
    return order


def iterate_sorted(items):
    seen = set(items)
    return [value for value in sorted(seen)]  # fine: sorted() pins the order


def tolerated_wall_clock():
    return time.time()  # repro: allow[determinism-purity] fixture marker


@lint_allow("determinism-purity", reason="fixture: decorator suppression")
def tolerated_by_decorator():
    return time.monotonic()
