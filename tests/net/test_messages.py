"""Tests for the base message abstraction and envelopes."""

from repro.net.messages import Envelope, Message, reset_message_counter


class TestMessage:
    def test_message_ids_are_unique_and_increasing(self):
        first = Message()
        second = Message()
        assert second.message_id > first.message_id

    def test_kind_is_class_name(self):
        assert Message().kind == "Message"

    def test_reset_counter(self):
        reset_message_counter()
        assert Message().message_id == 1


class TestEnvelope:
    def test_envelope_metadata(self):
        message = Message()
        envelope = Envelope(
            message=message,
            sender="a",
            destination="b",
            target_identifier=42,
            route=("a", "x", "b"),
            hops=2,
            sent_at=1.0,
            delivered_at=3.0,
        )
        assert envelope.kind == "Message"
        assert envelope.hops == len(envelope.route) - 1
        assert not envelope.direct
        assert "2 hops" in repr(envelope)

    def test_direct_envelope_repr(self):
        envelope = Envelope(message=Message(), sender="a", destination="b", direct=True)
        assert "direct" in repr(envelope)
