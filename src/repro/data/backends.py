"""Pluggable per-node tuple-store backends.

Every RJoin node stores the value-level tuples it receives in a node-local
store (see :mod:`repro.data.store`).  This module owns the *contract* of that
store — the abstract :class:`StoreBackend` — plus the registry/factory that
lets the engine swap implementations without touching the protocol layer:

* ``memory`` — the original dict + prefix-index store
  (:class:`~repro.data.store.TupleStore`); the default and the fastest for
  in-core simulations,
* ``sqlite`` — a disk-capable structured store
  (:class:`~repro.data.sqlite_store.SqliteTupleStore`) whose prefix matches
  and window expiries are SQL index scans and whose writes are batched into
  one transaction per network drain,
* ``append-log`` — an in-memory index over an append-only record log with
  compaction on garbage collection
  (:class:`~repro.data.append_log.AppendLogTupleStore`); a cheap middle
  point between the two.

The contract every backend must honour (the conformance suite in
``tests/data/test_store_backends.py`` enforces it for all registered
backends):

* per-key record lists are ordered by publication ``(pub_time, sequence)``
  regardless of insertion order,
* :meth:`StoreBackend.tuples_for_prefix` deduplicates by tuple identity and
  returns publication order,
* the ``remove_*_before`` expiry methods drop *strictly* older records and
  return the removal count,
* :meth:`StoreBackend.remove_key` returns the removed records so membership
  re-homing can replay them into another node's backend — of any kind,
* ``len(store)`` counts stored entries (one per ``(key, identity)`` slot),
  :meth:`StoreBackend.distinct_tuples` counts distinct publications, and
  :attr:`StoreBackend.cumulative_stored` survives :meth:`StoreBackend.clear`,
* the set-at-a-time operations (:meth:`StoreBackend.add_batch`,
  :meth:`StoreBackend.match_batch` / :meth:`StoreBackend.tuples_for_prefixes`
  and the ranged :meth:`StoreBackend.remove_expired`) are answer-equivalent
  to their per-item counterparts — they exist so disk backends can serve a
  whole drain tick's probes without a per-record Python round trip.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass
from typing import (
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    TYPE_CHECKING,
    Tuple as TupleT,
)

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.tuples import Tuple

#: Mirrors :mod:`repro.core.keys`: ``relation SEP attribute SEP value``.
SEPARATOR = "\x1f"

MEMORY_BACKEND = "memory"
SQLITE_BACKEND = "sqlite"
APPEND_LOG_BACKEND = "append-log"

#: Every registered backend name, in documentation order.
BACKEND_NAMES: TupleT[str, ...] = (
    MEMORY_BACKEND,
    SQLITE_BACKEND,
    APPEND_LOG_BACKEND,
)

DEFAULT_BACKEND = MEMORY_BACKEND

#: Probe kinds accepted by :meth:`StoreBackend.match_batch`.
KEY_PROBE = "key"
PREFIX_PROBE = "prefix"


@dataclass(frozen=True)
class StoreTuning:
    """Backend tuning knobs threaded through :func:`make_store`.

    Currently these parameterise the append-log backend's compaction
    trigger (a rewrite fires once at least ``compact_min_dead`` slots are
    tombstoned *and* the dead fraction of the log reaches
    ``compact_dead_fraction``); backends without matching knobs ignore the
    tuning.  The benchmark harness sweeps these to study the compaction
    trade-off.
    """

    compact_min_dead: int = 64
    compact_dead_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.compact_min_dead < 1:
            raise ConfigurationError("compact_min_dead must be at least one")
        if not 0.0 < self.compact_dead_fraction <= 1.0:
            raise ConfigurationError(
                "compact_dead_fraction must lie in (0, 1]"
            )


@dataclass
class StoredTuple:
    """A tuple held in a node-local store together with bookkeeping data."""

    tuple: "Tuple"
    key: str
    stored_at: float

    @property
    def identity(self) -> TupleT[str, int]:
        """Identity of the underlying published tuple."""
        return self.tuple.identity


def record_order(record: StoredTuple) -> TupleT[float, int]:
    """Publication order of a stored record."""
    return (record.tuple.pub_time, record.tuple.sequence)


def bucket_of(key: str) -> Optional[str]:
    """The ``relation SEP attribute SEP`` prefix of a value-level key.

    Returns None for keys that do not carry two separator-delimited fields
    (those are only reachable through each backend's slow scan path).
    """
    first = key.find(SEPARATOR)
    if first < 0:
        return None
    second = key.find(SEPARATOR, first + 1)
    if second < 0:
        return None
    return key[: second + 1]


def merge_records(lists: List[List[StoredTuple]]) -> List["Tuple"]:
    """Dedup and order the records of several key lists by publication.

    Each input list must already be in publication order; the merged result
    is publication-ordered and deduplicated by tuple identity.
    """
    if len(lists) == 1:
        merged: Iterable[StoredTuple] = lists[0]
    else:
        # k-way merge of already sorted per-key lists: O(n log k) and no
        # intermediate concatenated copy.
        merged = heapq.merge(*lists, key=record_order)
    seen: Set[TupleT[str, int]] = set()
    result: List["Tuple"] = []
    for record in merged:
        identity = record.tuple.identity
        if identity in seen:
            continue
        seen.add(identity)
        result.append(record.tuple)
    return result


class StoreBackend(abc.ABC):
    """Key-addressed local storage for published tuples.

    A store intentionally keeps one entry per ``(key, tuple identity)``
    pair: the same publication indexed under two different keys at the same
    node occupies two slots (it costs storage twice), which matches how the
    paper counts storage load, while lookups that span several keys
    deduplicate through :meth:`tuples_for_prefix`.
    """

    #: Registry name of the backend (``memory`` / ``sqlite`` / ``append-log``).
    name: ClassVar[str] = "abstract"

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def add(self, key: str, tup: "Tuple", now: float) -> StoredTuple:
        """Store ``tup`` under ``key`` and return the stored record."""

    @abc.abstractmethod
    def remove_older_than(self, key: str, cutoff: float) -> int:
        """Drop tuples under ``key`` stored strictly before ``cutoff``."""

    @abc.abstractmethod
    def remove_published_before(self, cutoff: float) -> int:
        """Drop every tuple published strictly before ``cutoff``."""

    @abc.abstractmethod
    def remove_sequenced_before(self, cutoff: float) -> int:
        """Drop every tuple whose sequence number is strictly below ``cutoff``."""

    @abc.abstractmethod
    def remove_key(self, key: str) -> List[StoredTuple]:
        """Remove and return every record stored under ``key`` (re-homing)."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Remove every stored tuple (does not reset cumulative counters)."""

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def tuples_for_key(self, key: str) -> List["Tuple"]:
        """The tuples stored under exactly ``key``, in publication order."""

    @abc.abstractmethod
    def records_for_key(self, key: str) -> List[StoredTuple]:
        """The stored records under exactly ``key``, in publication order."""

    @abc.abstractmethod
    def tuples_for_prefix(self, prefix: str) -> List["Tuple"]:
        """Tuples under any key starting with ``prefix`` (deduplicated, ordered)."""

    @abc.abstractmethod
    def has_key(self, key: str) -> bool:
        """Return whether any tuple is stored under ``key``."""

    # ------------------------------------------------------------------
    # set-at-a-time operations
    # ------------------------------------------------------------------
    # Every batch method has a per-item default so the contract stays
    # backward-compatible: a backend only overrides what it can genuinely
    # serve set-at-a-time (the sqlite backend answers a whole probe batch
    # with one SQL statement; the append-log backend merges sorted position
    # lists and batches tombstone writes).

    def add_batch(
        self, entries: Iterable[TupleT[str, "Tuple", float]]
    ) -> List[StoredTuple]:
        """Store ``(key, tuple, now)`` entries; returns the stored records."""
        return [self.add(key, tup, now) for key, tup, now in entries]

    def match_batch(
        self, probes: Sequence[TupleT[str, str]]
    ) -> List[List["Tuple"]]:
        """Serve a batch of probes, one result list per probe (in order).

        Each probe is ``(kind, text)`` with kind :data:`KEY_PROBE` (exact
        key, publication order, no dedup — same as :meth:`tuples_for_key`)
        or :data:`PREFIX_PROBE` (same as :meth:`tuples_for_prefix`:
        identity-deduplicated, publication order).
        """
        results: List[List["Tuple"]] = []
        for kind, text in probes:
            if kind == KEY_PROBE:
                results.append(self.tuples_for_key(text))
            elif kind == PREFIX_PROBE:
                results.append(self.tuples_for_prefix(text))
            else:
                raise ConfigurationError(
                    f"unknown probe kind {kind!r}; expected "
                    f"{KEY_PROBE!r} or {PREFIX_PROBE!r}"
                )
        return results

    def tuples_for_prefixes(
        self, prefixes: Sequence[str]
    ) -> Dict[str, List["Tuple"]]:
        """Resolve several prefixes at once: ``prefix -> matching tuples``."""
        texts = list(prefixes)
        matched = self.match_batch([(PREFIX_PROBE, text) for text in texts])
        return dict(zip(texts, matched))

    def remove_expired(
        self,
        published_before: Optional[float] = None,
        sequenced_before: Optional[int] = None,
    ) -> int:
        """Ranged GC: drop records behind either cutoff in one sweep.

        The union of :meth:`remove_published_before` and
        :meth:`remove_sequenced_before` (both strict); disk backends turn
        the combined predicate into a single ranged ``DELETE``.
        """
        removed = 0
        if published_before is not None:
            removed += self.remove_published_before(published_before)
        if sequenced_before is not None:
            removed += self.remove_sequenced_before(sequenced_before)
        return removed

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of currently stored entries (across all keys)."""

    @property
    @abc.abstractmethod
    def cumulative_stored(self) -> int:
        """Total number of store operations over the node's lifetime."""

    @abc.abstractmethod
    def keys(self) -> Iterable[str]:
        """Iterate over the indexing keys that currently hold tuples."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[StoredTuple]:
        """Iterate over every stored record."""

    @abc.abstractmethod
    def distinct_tuples(self) -> int:
        """Number of distinct publications currently stored at this node."""

    # ------------------------------------------------------------------
    # lifecycle (optional)
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Make buffered writes visible (no-op for unbuffered backends)."""

    def close(self) -> None:
        """Release external resources held by the backend (no-op default)."""


def make_store(
    backend: str = DEFAULT_BACKEND, tuning: Optional[StoreTuning] = None
) -> StoreBackend:
    """Build a fresh store of the requested backend kind.

    Implementations are imported lazily so that selecting ``memory`` never
    pays for the alternatives (and so this module stays import-cycle free).
    ``tuning`` carries backend knobs (see :class:`StoreTuning`); backends
    without matching knobs ignore it.
    """
    if backend == MEMORY_BACKEND:
        from repro.data.store import TupleStore

        return TupleStore()
    if backend == SQLITE_BACKEND:
        from repro.data.sqlite_store import SqliteTupleStore

        return SqliteTupleStore()
    if backend == APPEND_LOG_BACKEND:
        from repro.data.append_log import AppendLogTupleStore

        if tuning is not None:
            return AppendLogTupleStore(
                compact_min_dead=tuning.compact_min_dead,
                compact_dead_fraction=tuning.compact_dead_fraction,
            )
        return AppendLogTupleStore()
    known = ", ".join(BACKEND_NAMES)
    raise ConfigurationError(
        f"unknown store backend {backend!r}; known backends: {known}"
    )
