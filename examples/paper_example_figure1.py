#!/usr/bin/env python3
"""Reproduction of the paper's running example (Figure 1).

A node submits the 4-way continuous join

    SELECT S.B, M.A FROM R, S, J, M
    WHERE R.A = S.A AND S.B = J.B AND J.C = M.C

and the tuples t1 = R(2,5,8), t2 = S(2,6,3), t3 = M(9,1,2), t4 = J(7,6,2)
arrive in that order.  RJoin rewrites the query step by step — exactly the
five events drawn in Figure 1 — and the answer (S.B = 6, M.A = 9) is created
at the node responsible for ``M + C + 2`` and delivered to the submitter.

Run with::

    python examples/paper_example_figure1.py
"""

from __future__ import annotations

from repro import RJoinConfig, RJoinEngine


def describe_rewritten_queries(engine: RJoinEngine) -> None:
    """Print every rewritten query currently stored in the network."""
    for address, node in sorted(engine.nodes.items()):
        for key_text, records in sorted(node.rewritten_queries.items()):
            for record in records:
                print(f"    {address} holds [{record.key}]  ->  {record.state.query}")


def main() -> None:
    engine = RJoinEngine(RJoinConfig(num_nodes=24, seed=3))
    for name in ("R", "S", "J", "M"):
        engine.register_relation(name, ["A", "B", "C"])

    print("Event 1: node x submits the query q")
    handle = engine.submit(
        "SELECT S.B, M.A FROM R, S, J, M "
        "WHERE R.A = S.A AND S.B = J.B AND J.C = M.C"
    )
    print(f"    q = {handle.query}")

    print("\nEvent 2: a new tuple t1 = (2,5,8) of R arrives; q is rewritten into q1")
    engine.publish("R", (2, 5, 8))
    describe_rewritten_queries(engine)

    print("\nEvent 3: a new tuple t2 = (2,6,3) of S arrives; q1 is rewritten into q2")
    engine.publish("S", (2, 6, 3))
    describe_rewritten_queries(engine)

    print("\nEvent 4: a new tuple t3 = (9,1,2) of M arrives and is stored at "
          "Successor(Hash(M+C+'2'))")
    engine.publish("M", (9, 1, 2))

    print("\nEvent 5: a new tuple t4 = (7,6,2) of J arrives; q2 is rewritten into q3,"
          " which meets the stored tuple t3 and an answer is created")
    engine.publish("J", (7, 6, 2))

    print("\nAnswers delivered to the submitting node:")
    for answer in handle.answers:
        print(f"    S.B = {answer.values[0]}, M.A = {answer.values[1]} "
              f"(produced by {answer.producer})")
    assert handle.values() == [(6, 9)], "the Figure 1 answer should be (6, 9)"
    print("\nThe answer matches Figure 1: S.B = 6, M.A = 9")


if __name__ == "__main__":
    main()
