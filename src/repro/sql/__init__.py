"""SQL front-end for continuous multi-way equi-join queries.

The paper expresses continuous queries in SQL restricted to multi-way
equi-joins (Section 2).  This subpackage provides:

* an abstract syntax tree (:mod:`repro.sql.ast`) for the supported subset —
  ``SELECT [DISTINCT] items FROM relations WHERE conjunction of equi-joins
  and equality selections [WINDOW n TUPLES|TIME]``,
* conjunctive predicate utilities (:mod:`repro.sql.predicates`), including
  the equality-closure computation used by Section 6's candidate enumeration,
* a tokenizer and recursive-descent parser (:mod:`repro.sql.parser`),
* a formatter that renders an AST back to SQL text
  (:mod:`repro.sql.formatter`).
"""

from repro.sql.ast import (
    Constant,
    JoinPredicate,
    Query,
    SelectionPredicate,
    WindowSpec,
)
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query
from repro.sql.predicates import (
    equality_closure,
    implied_selections,
    predicates_for_relation,
)

__all__ = [
    "Constant",
    "JoinPredicate",
    "Query",
    "SelectionPredicate",
    "WindowSpec",
    "equality_closure",
    "format_query",
    "implied_selections",
    "parse_query",
    "predicates_for_relation",
]
