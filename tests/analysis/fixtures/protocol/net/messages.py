"""Fixture wire-message base (mirrors repro/net/messages.py)."""


class Message:
    """Base class every fixture protocol message derives from."""

    kind = "base"
