"""Integration tests: RJoin vs the centralised oracle on randomized workloads.

These tests check the paper's formal claims end to end on delay-free runs:

* soundness + eventual completeness (Theorem 1): the bag of answers produced
  by the distributed engine equals the oracle's bag,
* no accidental duplicates (Theorem 2): exact bag equality, not just set
  equality,
* sliding-window joins and DISTINCT queries preserve the equivalence,
* the ALTT extension keeps completeness when tuples race queries under
  message delays.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.sql.ast import WindowSpec
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


def run_side_by_side(
    spec: WorkloadSpec,
    num_queries: int,
    num_tuples: int,
    config: RJoinConfig,
):
    """Run the same workload through RJoin and the reference oracle."""
    generator = WorkloadGenerator(spec)
    engine = RJoinEngine(config)
    engine.register_catalog(generator.catalog)
    reference = ReferenceEngine(generator.catalog)
    handles = []
    for query in generator.generate_queries(num_queries):
        handle = engine.submit(query)
        reference.submit(
            query, query_id=handle.query_id, insertion_time=handle.insertion_time
        )
        handles.append(handle)
    for generated in generator.generate_tuples(num_tuples):
        tup = engine.publish(generated.relation, generated.values)
        reference.publish_tuple(tup)
    return engine, reference, handles


def as_bag(values) -> List[str]:
    return sorted(repr(v) for v in values)


class TestBagEquivalence:
    def test_random_three_way_workload(self):
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=4,
            join_arity=3,
            seed=101,
        )
        engine, reference, handles = run_side_by_side(
            spec, num_queries=8, num_tuples=40, config=RJoinConfig(num_nodes=16, seed=1)
        )
        assert sum(h.count for h in handles) > 0, "workload produced no answers"
        for handle in handles:
            assert as_bag(handle.values()) == as_bag(reference.answers(handle.query_id))

    def test_random_four_way_workload(self):
        spec = WorkloadSpec(
            num_relations=5,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=4,
            seed=202,
        )
        engine, reference, handles = run_side_by_side(
            spec, num_queries=6, num_tuples=40, config=RJoinConfig(num_nodes=24, seed=2)
        )
        for handle in handles:
            assert as_bag(handle.values()) == as_bag(reference.answers(handle.query_id))

    def test_two_way_specialisation_matches_sai(self):
        """m = 2 is the SAI algorithm of the earlier paper; it must be exact too."""
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=2,
            seed=303,
        )
        engine, reference, handles = run_side_by_side(
            spec,
            num_queries=10,
            num_tuples=40,
            config=RJoinConfig(num_nodes=16, seed=3),
        )
        assert sum(h.count for h in handles) > 0
        for handle in handles:
            assert as_bag(handle.values()) == as_bag(reference.answers(handle.query_id))

    def test_first_strategy_with_value_level_rewrites_is_complete(self):
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=4,
            join_arity=3,
            seed=404,
        )
        config = RJoinConfig(
            num_nodes=16,
            seed=4,
            strategy="first",
            allow_attribute_level_rewrites=False,
        )
        engine, reference, handles = run_side_by_side(
            spec, num_queries=8, num_tuples=40, config=config
        )
        for handle in handles:
            assert as_bag(handle.values()) == as_bag(reference.answers(handle.query_id))


class TestWindowedEquivalence:
    @pytest.mark.parametrize("mode,size", [("tuples", 8), ("time", 60.0)])
    def test_window_joins_match_reference(self, mode, size):
        window = WindowSpec(size=size, mode=mode)
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=505,
            window=window,
        )
        config = RJoinConfig(num_nodes=16, seed=5, tuple_gc_window=window)
        engine, reference, handles = run_side_by_side(
            spec, num_queries=6, num_tuples=50, config=config
        )
        for handle in handles:
            assert as_bag(handle.values()) == as_bag(reference.answers(handle.query_id))

    def test_window_garbage_collection_reduces_state(self):
        window = WindowSpec(size=5, mode="tuples")
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=606,
            window=window,
        )
        config = RJoinConfig(
            num_nodes=16, seed=6, tuple_gc_window=window, gc_every_tuples=10
        )
        engine, reference, handles = run_side_by_side(
            spec, num_queries=6, num_tuples=60, config=config
        )
        summary = engine.metrics_summary()
        assert summary["current_storage"] < summary["total_storage"]
        for handle in handles:
            assert as_bag(handle.values()) == as_bag(reference.answers(handle.query_id))


class TestDistinctEquivalence:
    def test_distinct_set_semantics(self):
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=707,
            distinct=True,
        )
        engine, reference, handles = run_side_by_side(
            spec, num_queries=6, num_tuples=40, config=RJoinConfig(num_nodes=16, seed=7)
        )
        produced = 0
        for handle in handles:
            expected = set(map(tuple, reference.answers(handle.query_id)))
            assert handle.distinct_values() == expected
            produced += len(expected)
        assert produced > 0

    def test_distinct_windowed_set_semantics(self):
        window = WindowSpec(size=10, mode="tuples")
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=808,
            distinct=True,
            window=window,
        )
        config = RJoinConfig(num_nodes=16, seed=8, tuple_gc_window=window)
        engine, reference, handles = run_side_by_side(
            spec, num_queries=6, num_tuples=40, config=config
        )
        for handle in handles:
            expected = set(map(tuple, reference.answers(handle.query_id)))
            assert handle.distinct_values() == expected


class TestDelaysAndAltt:
    def test_completeness_with_message_jitter(self):
        """Delayed deliveries must not lose answers thanks to the ALTT (Section 4)."""
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=4,
            join_arity=3,
            seed=909,
        )
        config = RJoinConfig(num_nodes=16, seed=9, delay_jitter=5.0)
        engine, reference, handles = run_side_by_side(
            spec, num_queries=8, num_tuples=40, config=config
        )
        for handle in handles:
            assert as_bag(handle.values()) == as_bag(reference.answers(handle.query_id))

    def test_interleaved_submission_and_publication(self):
        """Queries submitted while tuples flow still get exactly the right answers."""
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=111,
        )
        generator = WorkloadGenerator(spec)
        engine = RJoinEngine(RJoinConfig(num_nodes=16, seed=10))
        engine.register_catalog(generator.catalog)
        reference = ReferenceEngine(generator.catalog)
        handles = []
        queries = generator.generate_queries(6)
        tuples = generator.generate_tuples(48)
        for index, generated in enumerate(tuples):
            if index % 8 == 0 and queries:
                query = queries.pop()
                handle = engine.submit(query)
                reference.submit(
                    query,
                    query_id=handle.query_id,
                    insertion_time=handle.insertion_time,
                )
                handles.append(handle)
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        for handle in handles:
            assert as_bag(handle.values()) == as_bag(reference.answers(handle.query_id))


class TestAnswerMetadata:
    def test_answers_carry_producer_and_times(self, small_catalog):
        engine = RJoinEngine(RJoinConfig(num_nodes=16, seed=11), catalog=small_catalog)
        handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 2))
        answer = handle.latest()
        assert answer is not None
        assert answer.query_id == handle.query_id
        assert answer.producer in engine.nodes
        assert answer.delivered_at >= answer.produced_at >= handle.insertion_time
