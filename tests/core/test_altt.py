"""Tests for the attribute-level tuple table (ALTT)."""

from repro.core.altt import AttributeLevelTupleTable
from repro.data.schema import RelationSchema
from repro.data.tuples import Tuple


SCHEMA = RelationSchema("R", ["a"])


def tup(pub_time, sequence):
    return Tuple.from_schema(SCHEMA, (1,), pub_time=pub_time, sequence=sequence)


class TestALTT:
    def test_add_and_find(self):
        table = AttributeLevelTupleTable(delta=10)
        table.add("R.a", tup(1.0, 1), now=1.0)
        assert len(table.find("R.a", now=2.0)) == 1
        assert table.find("other", now=2.0) == []

    def test_delta_expiry_on_find(self):
        table = AttributeLevelTupleTable(delta=5)
        table.add("R.a", tup(1.0, 1), now=1.0)
        assert table.find("R.a", now=5.9)
        assert table.find("R.a", now=7.0) == []

    def test_explicit_expire_removes_entries(self):
        table = AttributeLevelTupleTable(delta=5)
        table.add("R.a", tup(1.0, 1), now=1.0)
        table.add("R.a", tup(8.0, 2), now=8.0)
        removed = table.expire(now=10.0)
        assert removed == 1
        assert len(table) == 1

    def test_infinite_delta_keeps_everything(self):
        table = AttributeLevelTupleTable(delta=None)
        table.add("R.a", tup(1.0, 1), now=1.0)
        assert table.expire(now=1e9) == 0
        assert table.find("R.a", now=1e9)

    def test_publication_time_filter(self):
        table = AttributeLevelTupleTable(delta=None)
        table.add("R.a", tup(pub_time=3.0, sequence=1), now=3.0)
        table.add("R.a", tup(pub_time=9.0, sequence=2), now=9.0)
        recent = table.find("R.a", now=10.0, published_at_or_after=5.0)
        assert len(recent) == 1
        assert recent[0].pub_time == 9.0
        # The boundary is inclusive (pubT >= insT in the trigger condition).
        assert len(table.find("R.a", now=10.0, published_at_or_after=3.0)) == 2

    def test_counters_and_clear(self):
        table = AttributeLevelTupleTable(delta=None)
        for i in range(4):
            table.add("k", tup(float(i), i), now=float(i))
        assert len(table) == 4
        assert table.cumulative_stored == 4
        table.clear()
        assert len(table) == 0
        assert table.cumulative_stored == 4
