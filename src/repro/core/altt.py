"""Attribute-level tuple table (ALTT) — Section 4.

Without further care RJoin can lose answers when messages are delayed: a
tuple may reach the attribute-level node *before* the input query that it
should trigger.  The paper's fix is local: every node keeps tuples received
at the attribute level in a dedicated table (the ALTT) for ``Δ`` time units,
and whenever an input query arrives the node first searches the ALTT for
matching tuples published at or after the query's insertion time.

``Δ`` may be infinite (tuples are never discarded — also useful to support
one-time queries), or an overestimate of the maximum message transit time,
which is what the eventual-completeness theorem requires.  The engine derives
a default Δ from the messaging service's bounded per-hop delay.

Because :meth:`AttributeLevelTupleTable.expire` runs on *every*
attribute-level tuple arrival, it is a hot path: expiry is driven by a
min-heap over reception times, so a sweep costs O(expired · log n) instead of
re-scanning every retained entry.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple as TupleT

from repro.data.tuples import Tuple


@dataclass
class _AlttEntry:
    tuple: Tuple
    received_at: float


class AttributeLevelTupleTable:
    """Per-node table of recently received attribute-level tuples."""

    def __init__(self, delta: Optional[float] = None) -> None:
        """``delta`` is the retention time Δ; ``None`` means keep forever."""
        self.delta = delta
        self._by_key: Dict[str, List[_AlttEntry]] = {}
        self._stored_total = 0
        self._size = 0
        # (received_at, tiebreak, key) min-heap; only maintained when entries
        # can actually expire (finite Δ).
        self._expiry_heap: List[TupleT[float, int, str]] = []
        self._tiebreak = itertools.count()
        # Keys whose entries were added with non-monotone reception times.
        # Arrival order is monotone under the engine clock, letting expiry
        # cut a prefix; the rare unsorted key falls back to a full filter.
        self._unsorted_keys: Set[str] = set()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key_text: str, tup: Tuple, now: float) -> None:
        """Remember that ``tup`` arrived at attribute-level key ``key_text``."""
        entries = self._by_key.setdefault(key_text, [])
        if entries and entries[-1].received_at > now:
            self._unsorted_keys.add(key_text)
        entries.append(_AlttEntry(tuple=tup, received_at=now))
        self._stored_total += 1
        self._size += 1
        if self.delta is not None:
            heapq.heappush(
                self._expiry_heap, (now, next(self._tiebreak), key_text)
            )

    def expire(self, now: float) -> int:
        """Drop entries older than Δ; returns the number of removed entries."""
        if self.delta is None:
            return 0
        cutoff = now - self.delta
        heap = self._expiry_heap
        affected: Set[str] = set()
        while heap and heap[0][0] < cutoff:
            affected.add(heapq.heappop(heap)[2])
        removed = 0
        # Sorted so key-deletion order (and therefore later key-enumeration
        # order of _by_key) is identical across interpreter runs regardless
        # of string hash randomisation.
        for key in sorted(affected):
            entries = self._by_key.get(key)
            if not entries:
                continue
            if key in self._unsorted_keys:
                kept: List[_AlttEntry] = []
                for entry in entries:
                    if entry.received_at >= cutoff:
                        kept.append(entry)
                    else:
                        removed += 1
                if kept:
                    self._by_key[key] = kept
                else:
                    del self._by_key[key]
                    self._unsorted_keys.discard(key)
                continue
            # Entries arrived in reception order: the expired ones are a
            # prefix, so only removed entries are ever touched.
            index = 0
            length = len(entries)
            while index < length and entries[index].received_at < cutoff:
                index += 1
            if not index:
                continue
            removed += index
            if index == length:
                del self._by_key[key]
            else:
                del entries[:index]
        self._size -= removed
        return removed

    def remove_published_before(self, cutoff: float) -> int:
        """Drop entries whose tuple was *published* strictly before ``cutoff``.

        The query-lifecycle vacuum: once no active query remains, any future
        query's insertion time is at or after the current clock, so retained
        tuples published before it can never satisfy the trigger condition
        ``pubT(t) >= insT(q)`` again.  Filters on publication time (unlike
        :meth:`expire`, which works on reception time); stale expiry-heap
        entries for removed tuples pop harmlessly later.  Returns the number
        of removed entries.
        """
        removed = 0
        for key in list(self._by_key):
            entries = self._by_key[key]
            kept = [
                entry for entry in entries if entry.tuple.pub_time >= cutoff
            ]
            if len(kept) == len(entries):
                continue
            removed += len(entries) - len(kept)
            if kept:
                self._by_key[key] = kept
            else:
                del self._by_key[key]
                self._unsorted_keys.discard(key)
        self._size -= removed
        return removed

    def pop_key(self, key_text: str) -> List[TupleT[Tuple, float]]:
        """Remove every entry under ``key_text``; returns ``(tuple, received_at)`` pairs.

        Used by membership re-homing: the pairs can be replayed through
        :meth:`add` on the new owner, preserving each entry's reception time
        (and therefore its remaining Δ budget).  Stale expiry-heap entries
        for the removed key pop harmlessly later — expiry re-checks the key.
        """
        entries = self._by_key.pop(key_text, [])
        self._unsorted_keys.discard(key_text)
        self._size -= len(entries)
        return [(entry.tuple, entry.received_at) for entry in entries]

    def keys(self) -> List[str]:
        """The attribute-level keys currently holding entries."""
        return list(self._by_key.keys())

    def clear(self) -> None:
        """Remove every entry."""
        self._by_key.clear()
        self._expiry_heap.clear()
        self._unsorted_keys.clear()
        self._size = 0

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def find(
        self,
        key_text: str,
        now: float,
        published_at_or_after: Optional[float] = None,
    ) -> List[Tuple]:
        """Tuples under ``key_text`` that are still retained and recent enough.

        ``published_at_or_after`` filters on the publication time, matching
        the trigger condition ``pubT(t) ≥ insT(q)``.
        """
        entries = self._by_key.get(key_text, [])
        cutoff = None if self.delta is None else now - self.delta
        result: List[Tuple] = []
        for entry in entries:
            if cutoff is not None and entry.received_at < cutoff:
                continue
            if (
                published_at_or_after is not None
                and entry.tuple.pub_time < published_at_or_after
            ):
                continue
            result.append(entry.tuple)
        return result

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def cumulative_stored(self) -> int:
        """Total number of tuples ever added to the table."""
        return self._stored_total
