"""Published tuples.

A :class:`Tuple` is the unit of data insertion in the system (Section 2 of
the paper).  Relations are append-only, so tuples are immutable.  Every tuple
carries:

* the relation name and its values,
* ``pub_time`` — the publication time ``pubT(t)``: the simulation time at
  which the tuple was inserted into the network by some node,
* ``sequence`` — a global publication sequence number, used both as a stable
  identity for deduplication in local stores and as the logical clock for
  tuple-based sliding windows,
* ``publisher`` — the address of the node that published the tuple (used by
  the engine for accounting; the protocol itself only needs the values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple as TupleT

from repro.data.schema import RelationSchema
from repro.errors import SchemaError


@dataclass(frozen=True)
class Tuple:
    """An immutable published tuple of an append-only relation."""

    relation: str
    values: TupleT[Any, ...]
    pub_time: float = 0.0
    sequence: int = 0
    publisher: Optional[str] = None
    _schema: Optional[RelationSchema] = field(
        default=None, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if self._schema is not None and len(self.values) != self._schema.arity:
            raise SchemaError(
                f"tuple for relation {self.relation!r} has {len(self.values)} "
                f"values but the schema has arity {self._schema.arity}"
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_schema(
        cls,
        schema: RelationSchema,
        values: Sequence[Any],
        pub_time: float = 0.0,
        sequence: int = 0,
        publisher: Optional[str] = None,
    ) -> "Tuple":
        """Build a tuple validated against ``schema``."""
        return cls(
            relation=schema.name,
            values=tuple(values),
            pub_time=pub_time,
            sequence=sequence,
            publisher=publisher,
            _schema=schema,
        )

    # ------------------------------------------------------------------
    # value access
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of values carried by the tuple."""
        return len(self.values)

    def value_at(self, position: int) -> Any:
        """Return the value at 0-based ``position``."""
        return self.values[position]

    def value_of(self, attribute: str, schema: RelationSchema) -> Any:
        """Return the value of named ``attribute`` using ``schema`` positions."""
        return self.values[schema.position_of(attribute)]

    def as_dict(self, schema: RelationSchema) -> Dict[str, Any]:
        """Return ``{attribute_name: value}`` for this tuple."""
        if len(self.values) != schema.arity:
            raise SchemaError(
                f"tuple arity {len(self.values)} does not match schema "
                f"{schema.name!r} arity {schema.arity}"
            )
        return dict(zip(schema.attributes, self.values))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def identity(self) -> TupleT[str, int]:
        """A stable identity used for local deduplication.

        Two physical copies of the same publication (e.g. a tuple received
        both at the attribute level and the value level by the same node)
        share the identity ``(relation, sequence)``.
        """
        return (self.relation, self.sequence)

    def __str__(self) -> str:  # pragma: no cover - trivial
        vals = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({vals})@{self.pub_time:g}"
