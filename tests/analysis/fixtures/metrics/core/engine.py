"""Fixture engine whose metrics_summary drifts from the declared schema."""

from metrics.collectors import ChurnStats


class RJoinEngine:
    def __init__(self):
        self.churn = ChurnStats()

    def metrics_summary(self):
        # VIOLATION: obs/instruments.py declares histograms but this dict
        # literal never spreads **histogram_percentiles(...), so their
        # percentile keys can never surface.
        return {
            "joins": self.churn.joins,
            # VIOLATION: ghost_metric is not defined on ChurnStats.
            "ghost_reads": self.churn.ghost_metric,
            # VIOLATION: emitted but not declared in SUMMARY_SCHEMA.
            "extra_key": 0,
        }
