"""Rule ``exception-discipline`` — no bare builtin raises in the library.

Every error the library raises derives from
:class:`~repro.errors.ReproError` so callers can catch one base class; the
PR 2 bug class was exactly a bare ``ValueError`` escaping through the
engine's public API and corrupting caller state that expected
``EngineError``.  This rule pins the discipline forever: a ``raise`` of a
builtin exception (``ValueError``, ``TypeError``, ``RuntimeError``,
``Exception`` …) anywhere in :mod:`repro` is a violation — raise the
matching :mod:`repro.errors` subclass instead (add one if no existing
class fits).

Re-raises (bare ``raise``), ``raise ... from ...`` chains whose *new*
exception is a project error, and builtin exceptions used in ``except``
clauses are all fine; only *originating* a builtin is banned.
``NotImplementedError`` (abstract-surface convention) and
``StopIteration``/``StopAsyncIteration`` (iterator protocol) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.base import Finding, Rule
from repro.analysis.project import Project

#: Builtin exception classes that must not be originated by library code.
BANNED_BUILTINS: Set[str] = {
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OSError",
    "IOError",
    "LookupError",
    "AssertionError",
}


class ExceptionDisciplineRule(Rule):
    """Library code raises repro.errors subclasses, never bare builtins."""

    name = "exception-discipline"
    description = (
        "no `raise ValueError/Exception/...` in repro code — raise a "
        "descriptive repro.errors subclass"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for sf in project.files():
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name in BANNED_BUILTINS:
                    yield self.finding(
                        sf,
                        node,
                        f"raise {name}: library errors must derive from "
                        "ReproError so callers can catch one hierarchy — "
                        "use (or add) a descriptive subclass in "
                        "repro/errors.py",
                    )
