"""Per-node query-processing and storage load accounting.

The definitions follow Section 8 of the paper verbatim:

* the *query processing load* (QPL) of a node is the number of rewritten
  queries it receives (to search for locally stored tuples) plus the number
  of tuples it receives (to search for locally stored queries),
* the *storage load* (SL) of a node is the number of rewritten queries plus
  the number of tuples it stores locally.

Both cumulative (total load incurred over the run) and current (state held
right now, after garbage collection) storage values are tracked: without
sliding windows the two coincide; with windows the difference is exactly the
state reduction the paper credits windows for.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple


@dataclass(frozen=True)
class MembershipEvent:
    """One ring-membership change and the state movement it caused.

    ``kind`` is ``"join"``, ``"leave"``, ``"crash"`` or ``"move"`` (one
    id-movement rebalancing round).  Re-homed counters cover state handed to
    its new owner; lost counters cover state destroyed by a crash.
    """

    kind: str
    address: str
    at: float
    records_rehomed: int = 0
    bytes_rehomed: int = 0
    records_lost: int = 0
    bytes_lost: int = 0


class ChurnStats:
    """Network-wide accounting of membership churn and state re-homing.

    Fed by the engine's :class:`~repro.core.membership.MembershipManager`;
    aggregates are maintained incrementally so the metrics summary reads
    them in O(1).
    """

    def __init__(self) -> None:
        self.events: List[MembershipEvent] = []
        self._by_kind: Dict[str, int] = defaultdict(int)
        self._records_rehomed = 0
        self._bytes_rehomed = 0
        self._records_lost = 0
        self._bytes_lost = 0
        # Query lifecycle (retraction + owner failover) -------------------
        self._queries_removed = 0
        self._records_retracted = 0
        self._records_vacuumed = 0
        self._orphaned_state_records = 0
        self._failover_reregistrations = 0
        self._replica_repairs = 0
        self._answers_rerouted = 0
        # Matching (predicate-aware query index + shared state) ------------
        self._queries_triggered = 0
        self._trigger_candidates_scanned = 0
        self._shared_state_fanout = 0

    def record(self, event: MembershipEvent) -> None:
        """Account one membership event."""
        self.events.append(event)
        self._by_kind[event.kind] += 1
        self._records_rehomed += event.records_rehomed
        self._bytes_rehomed += event.bytes_rehomed
        self._records_lost += event.records_lost
        self._bytes_lost += event.bytes_lost

    # ------------------------------------------------------------------
    # query lifecycle accounting
    # ------------------------------------------------------------------
    def record_query_removed(self, records_retracted: int = 0) -> None:
        """One continuous query was retracted, purging ``records_retracted``."""
        self._queries_removed += 1
        self._records_retracted += records_retracted

    def record_vacuum(self, records: int) -> None:
        """The no-active-queries vacuum reclaimed ``records`` stored items."""
        self._records_vacuumed += records

    def record_orphaned(self, records: int = 1) -> None:
        """State of a retracted query surfaced after its removal (probe)."""
        self._orphaned_state_records += records

    def record_failover_reregistration(self, count: int = 1) -> None:
        """A surviving node took over a departed owner's registrations."""
        self._failover_reregistrations += count

    def record_replica_repairs(self, count: int) -> None:
        """Owners re-replicated registrations a departed holder destroyed."""
        self._replica_repairs += count

    def record_answers_rerouted(self, count: int = 1) -> None:
        """In-flight answers were re-routed to a failed-over owner."""
        self._answers_rerouted += count

    # ------------------------------------------------------------------
    # tuple-arrival matching accounting
    # ------------------------------------------------------------------
    def record_queries_triggered(self, count: int = 1) -> None:
        """Stored queries whose rewrite actually fired on a tuple arrival."""
        self._queries_triggered += count

    def record_trigger_candidates_scanned(self, count: int) -> None:
        """Stored-query candidates fetched by tuple-arrival index probes."""
        self._trigger_candidates_scanned += count

    def record_shared_state_fanout(self, count: int) -> None:
        """Extra subscribers served by shared-state answer emissions."""
        self._shared_state_fanout += count

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def joins(self) -> int:
        """Number of nodes that joined the ring."""
        return self._by_kind["join"]

    @property
    def leaves(self) -> int:
        """Number of graceful departures."""
        return self._by_kind["leave"]

    @property
    def crashes(self) -> int:
        """Number of abrupt failures."""
        return self._by_kind["crash"]

    @property
    def moves(self) -> int:
        """Number of id-movement rebalancing rounds that moved state."""
        return self._by_kind["move"]

    @property
    def total_events(self) -> int:
        """Every membership event recorded so far."""
        return len(self.events)

    @property
    def records_rehomed(self) -> int:
        """Stored items moved to a new owner across all events; O(1)."""
        return self._records_rehomed

    @property
    def bytes_rehomed(self) -> int:
        """Estimated payload bytes moved across all events; O(1)."""
        return self._bytes_rehomed

    @property
    def records_lost(self) -> int:
        """Stored items destroyed by crashes; O(1)."""
        return self._records_lost

    @property
    def bytes_lost(self) -> int:
        """Estimated payload bytes destroyed by crashes; O(1)."""
        return self._bytes_lost

    @property
    def queries_removed(self) -> int:
        """Continuous queries retracted through the lifecycle layer; O(1)."""
        return self._queries_removed

    @property
    def records_retracted(self) -> int:
        """State records purged by query retractions; O(1)."""
        return self._records_retracted

    @property
    def records_vacuumed(self) -> int:
        """Stored items reclaimed by the no-active-queries vacuum; O(1)."""
        return self._records_vacuumed

    @property
    def orphaned_state_records(self) -> int:
        """Retracted-query state caught after removal (should stay 0); O(1)."""
        return self._orphaned_state_records

    @property
    def failover_reregistrations(self) -> int:
        """Handle registrations taken over by surviving nodes; O(1)."""
        return self._failover_reregistrations

    @property
    def replica_repairs(self) -> int:
        """Registrations re-replicated after their holder departed; O(1)."""
        return self._replica_repairs

    @property
    def answers_rerouted(self) -> int:
        """In-flight answers re-routed to a failed-over owner; O(1)."""
        return self._answers_rerouted

    @property
    def queries_triggered(self) -> int:
        """Stored queries whose rewrite fired on a tuple arrival; O(1)."""
        return self._queries_triggered

    @property
    def trigger_candidates_scanned(self) -> int:
        """Candidates fetched by tuple-arrival index probes; O(1).

        The index-selectivity probe: with the predicate-aware query index
        this stays close to :attr:`queries_triggered`; a full-scan matcher
        would instead scan every resident record per arrival.
        """
        return self._trigger_candidates_scanned

    @property
    def shared_state_fanout(self) -> int:
        """Extra subscribers served by shared-state answers; O(1)."""
        return self._shared_state_fanout

    def reset(self) -> None:
        """Clear every counter and the event log."""
        self.events.clear()
        self._by_kind.clear()
        self._records_rehomed = 0
        self._bytes_rehomed = 0
        self._records_lost = 0
        self._bytes_lost = 0
        self._queries_removed = 0
        self._records_retracted = 0
        self._records_vacuumed = 0
        self._orphaned_state_records = 0
        self._failover_reregistrations = 0
        self._replica_repairs = 0
        self._answers_rerouted = 0
        self._queries_triggered = 0
        self._trigger_candidates_scanned = 0
        self._shared_state_fanout = 0


@dataclass
class NodeLoad:
    """Load counters of a single node."""

    tuples_received: int = 0
    queries_received: int = 0          # rewritten queries received (QPL component)
    input_queries_received: int = 0    # input query indexing (not part of QPL)
    queries_stored: int = 0            # cumulative rewritten queries stored
    tuples_stored: int = 0             # cumulative tuples stored (value level)
    queries_dropped: int = 0           # stored queries removed (window GC)
    tuples_dropped: int = 0            # stored tuples removed (window GC)
    answers_produced: int = 0

    @property
    def query_processing_load(self) -> int:
        """QPL as defined in Section 8."""
        return self.tuples_received + self.queries_received

    @property
    def storage_load(self) -> int:
        """Cumulative SL: every item the node ever had to store."""
        return self.queries_stored + self.tuples_stored

    @property
    def current_storage(self) -> int:
        """Items currently held (after garbage collection)."""
        return self.storage_load - self.queries_dropped - self.tuples_dropped


class LoadTracker:
    """Network-wide QPL/SL accounting, keyed by node address.

    Besides the per-node counters, the network-wide aggregates are maintained
    incrementally so that :attr:`total_query_processing_load` and friends —
    polled by the engine's metrics summary and by every rebalancing round —
    are O(1) instead of a sum over all nodes.
    """

    def __init__(self) -> None:
        self._per_node: Dict[str, NodeLoad] = defaultdict(NodeLoad)
        self._total_qpl = 0
        self._total_storage = 0
        self._total_dropped = 0
        self._total_answers = 0
        self._participating = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_tuple_received(self, address: str) -> None:
        """A node received a tuple and must search its stored queries."""
        load = self._per_node[address]
        if load.query_processing_load == 0:
            self._participating += 1
        load.tuples_received += 1
        self._total_qpl += 1

    def record_query_received(self, address: str) -> None:
        """A node received a rewritten query and must search its stored tuples."""
        load = self._per_node[address]
        if load.query_processing_load == 0:
            self._participating += 1
        load.queries_received += 1
        self._total_qpl += 1

    def record_input_query_received(self, address: str) -> None:
        """A node received an input query for indexing."""
        self._per_node[address].input_queries_received += 1

    def record_query_stored(self, address: str) -> None:
        """A node stored a rewritten query locally."""
        self._per_node[address].queries_stored += 1
        self._total_storage += 1

    def record_tuple_stored(self, address: str) -> None:
        """A node stored a tuple locally (value level)."""
        self._per_node[address].tuples_stored += 1
        self._total_storage += 1

    def record_query_dropped(self, address: str, count: int = 1) -> None:
        """Stored rewritten queries were garbage collected."""
        self._per_node[address].queries_dropped += count
        self._total_dropped += count

    def record_tuple_dropped(self, address: str, count: int = 1) -> None:
        """Stored tuples were garbage collected."""
        self._per_node[address].tuples_dropped += count
        self._total_dropped += count

    def record_answer(self, address: str) -> None:
        """A node produced an answer for some input query."""
        self._per_node[address].answers_produced += 1
        self._total_answers += 1

    # ------------------------------------------------------------------
    # per-node access
    # ------------------------------------------------------------------
    def node(self, address: str) -> NodeLoad:
        """Counters for one node (zeroed for unknown addresses)."""
        return self._per_node[address]

    def per_node(self) -> Mapping[str, NodeLoad]:
        """Mapping of address to load counters."""
        return dict(self._per_node)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def total_query_processing_load(self) -> int:
        """Sum of QPL over all nodes; O(1)."""
        return self._total_qpl

    @property
    def total_storage_load(self) -> int:
        """Sum of cumulative SL over all nodes; O(1)."""
        return self._total_storage

    @property
    def total_current_storage(self) -> int:
        """Sum of currently held items over all nodes; O(1)."""
        return self._total_storage - self._total_dropped

    @property
    def total_answers(self) -> int:
        """Total answers produced network-wide; O(1)."""
        return self._total_answers

    def qpl_per_node(self, num_nodes: int) -> float:
        """Average QPL per node in a network of ``num_nodes``."""
        if num_nodes <= 0:
            return 0.0
        return self.total_query_processing_load / num_nodes

    def storage_per_node(self, num_nodes: int) -> float:
        """Average cumulative SL per node in a network of ``num_nodes``."""
        if num_nodes <= 0:
            return 0.0
        return self.total_storage_load / num_nodes

    def ranked_query_processing_load(self) -> List[int]:
        """Per-node QPL, sorted decreasing (ranked-node plots)."""
        return sorted(
            (load.query_processing_load for load in self._per_node.values()),
            reverse=True,
        )

    def ranked_storage_load(self, current: bool = False) -> List[int]:
        """Per-node SL (cumulative or current), sorted decreasing."""
        if current:
            values = (load.current_storage for load in self._per_node.values())
        else:
            values = (load.storage_load for load in self._per_node.values())
        return sorted(values, reverse=True)

    def participating_nodes(self) -> int:
        """Number of nodes that incurred any query-processing load; O(1)."""
        return self._participating

    def snapshot(self) -> Tuple[int, int]:
        """Return ``(total QPL, total cumulative SL)`` for delta computations."""
        return self.total_query_processing_load, self.total_storage_load

    def reset(self) -> None:
        """Clear every counter."""
        self._per_node.clear()
        self._total_qpl = 0
        self._total_storage = 0
        self._total_dropped = 0
        self._total_answers = 0
        self._participating = 0
