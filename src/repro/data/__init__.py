"""Relational data model used by the RJoin engine.

The paper assumes the relational data model: data is inserted into the
network as tuples of append-only relations (Section 2).  This subpackage
provides:

* :class:`~repro.data.schema.RelationSchema` and
  :class:`~repro.data.schema.Catalog` — relation schemas and the schema
  catalog shared by publishers and queriers,
* :class:`~repro.data.tuples.Tuple` — an immutable published tuple carrying
  its publication time and per-relation sequence number,
* :class:`~repro.data.store.TupleStore` — the per-node local tuple storage
  keyed by indexing keys (used for value-level storage and the ALTT).
"""

from repro.data.schema import AttributeRef, Catalog, RelationSchema
from repro.data.store import StoredTuple, TupleStore
from repro.data.tuples import Tuple

__all__ = [
    "AttributeRef",
    "Catalog",
    "RelationSchema",
    "StoredTuple",
    "Tuple",
    "TupleStore",
]
