"""Configuration of the RJoin engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.data.backends import BACKEND_NAMES, DEFAULT_BACKEND, StoreTuning
from repro.errors import ConfigurationError
from repro.net.runtime import DEFAULT_TRANSPORT, TRANSPORT_NAMES
from repro.obs.trace import OBSERVABILITY_MODES
from repro.sql.ast import WindowSpec

#: Sentinel meaning "derive the ALTT retention Δ from the network's bounded delay".
AUTO = "auto"


@dataclass
class RJoinConfig:
    """Tunable parameters of an :class:`~repro.core.engine.RJoinEngine`.

    The defaults favour small, fully deterministic simulations; the
    experiment harness overrides the network size and strategy per figure.

    Parameters
    ----------
    num_nodes:
        Number of DHT nodes in the simulated Chord network.
    runtime:
        Node runtime the engine executes on: ``sim`` (the deterministic
        discrete-event kernel — the test/oracle harness) or ``asyncio``
        (each node is a concurrent actor task with a bounded inbox; answer
        bags are identical, delivery order and traffic placement are not);
        see :mod:`repro.net.runtime`.
    bits:
        Width of the identifier space in bits.
    hop_delay:
        Simulated time units consumed by one routing hop.
    delay_jitter:
        Extra random per-message delay in ``[0, delay_jitter]`` (used to
        exercise the ALTT machinery with out-of-order deliveries).
    strategy:
        Indexing strategy name: ``rjoin``, ``random``, ``worst`` or ``first``.
    store_backend:
        Node-local tuple-store backend: ``memory`` (the default dict +
        prefix-index store), ``sqlite`` (table-backed, index scans for
        prefix match and expiry) or ``append-log`` (append-only log with
        compaction); see :func:`repro.data.backends.make_store`.
    append_log_compact_min_dead:
        Tombstone floor below which the append-log backend never compacts
        (only meaningful with ``store_backend="append-log"``).
    append_log_compact_fraction:
        Dead fraction of the append-log that triggers a compaction rewrite,
        in ``(0, 1]``; lower values compact more aggressively.
    allow_attribute_level_rewrites:
        Whether rewritten queries may also be indexed at the attribute level
        (candidate family (a) of Section 6).  Attribute-level rewritten
        queries only see tuples that arrive *after* them (plus the ALTT), so
        enabling the family trades exactness for the larger plan space the
        paper explores; the experiment harness enables it, the library
        default keeps it off so that RJoin delivers exactly the reference
        bag of answers.
    altt_delta:
        Retention Δ of the attribute-level tuple table: ``"auto"`` derives a
        safe overestimate from the messaging delay bound, ``None`` keeps
        tuples forever, a number sets Δ explicitly.
    count_altt_in_storage:
        Whether ALTT entries count towards the storage-load metric.
    shared_query_state:
        Whether equivalent query states (same residual query, window state
        and insertion time — equal modulo query id) are canonicalized into
        one shared physical record whose answers fan out per subscriber
        (multi-query sharing).  Disabling restores strictly private
        per-query state; answers are identical either way.
    ric_window:
        Horizon (in simulated time) of the per-key arrival counting used as
        RIC information; ``None`` counts arrivals since the beginning.
    ric_freshness:
        Maximum age of a cached candidate-table entry before the candidate
        node is asked again; ``None`` caches forever.
    ric_max_tracked_keys:
        Per-node bound on the number of distinct keys the RIC rate tracker
        keeps arrival state for; the least recently *recorded* key is
        evicted first (its reported rate falls back to 0.0 — RIC entries
        are advisory).  ``None`` removes the bound, restoring unbounded
        growth under million-distinct-key floods.
    tuple_gc_window:
        When every continuous query of the run uses the same sliding window,
        stored tuples older than this window can be garbage collected; the
        experiment harness sets it to the workload window.
    gc_every_tuples:
        How often (in published tuples) the engine sweeps stores for
        window-expired state.
    owner_failover:
        Whether every submitted query's handle registration (owner address
        plus answer watermark) is replicated onto the owner's ring
        successor, so that an owner departure re-registers the query on the
        survivor and its answers keep flowing instead of being dropped (the
        query lifecycle subsystem).  Disabling restores the pre-lifecycle
        behaviour: answers routed to a departed owner are lost.
    id_movement:
        Enables the lower-layer id-movement load balancing (Figure 9).
    rebalance_every_tuples:
        How often (in published tuples) the balancer runs when enabled.
    light_load_factor:
        Nodes below ``light_load_factor * average load`` are candidates to be
        moved next to overloaded nodes.
    seed:
        Seed of every random choice made by the engine (node placement,
        random strategy, owner/publisher selection).
    max_events_per_publish:
        Optional guard on the number of simulation events a single tuple
        publication may trigger (protects tests from runaway cascades).
    observability:
        ``"off"`` (the default — no tracer, no instruments, near-zero
        overhead) or ``"on"``: every envelope carries a trace context,
        every delivery opens a span, and the latency/load histograms of
        :mod:`repro.obs` are recorded and folded into
        :meth:`~repro.core.engine.RJoinEngine.metrics_summary`.
    trace_path:
        With ``observability="on"``, stream finished spans to this JSONL
        file (bounded; see :data:`repro.obs.DEFAULT_MAX_SPANS`).  ``None``
        retains spans in memory — read them via ``engine.obs.spans`` or
        dump them with ``engine.write_trace(path)``.
    """

    num_nodes: int = 64
    runtime: str = DEFAULT_TRANSPORT
    bits: int = 48
    hop_delay: float = 1.0
    delay_jitter: float = 0.0
    strategy: str = "rjoin"
    store_backend: str = DEFAULT_BACKEND
    append_log_compact_min_dead: int = 64
    append_log_compact_fraction: float = 0.5
    allow_attribute_level_rewrites: bool = False
    shared_query_state: bool = True
    altt_delta: Union[str, float, None] = AUTO
    count_altt_in_storage: bool = False
    ric_window: Optional[float] = None
    ric_freshness: Optional[float] = None
    ric_max_tracked_keys: Optional[int] = 65536
    tuple_gc_window: Optional[WindowSpec] = None
    gc_every_tuples: int = 50
    owner_failover: bool = True
    id_movement: bool = False
    rebalance_every_tuples: int = 100
    light_load_factor: float = 0.5
    seed: int = 0
    max_events_per_publish: Optional[int] = None
    observability: str = "off"
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if self.runtime not in TRANSPORT_NAMES:
            known = ", ".join(TRANSPORT_NAMES)
            raise ConfigurationError(
                f"unknown runtime {self.runtime!r}; known runtimes: {known}"
            )
        if self.bits <= 0 or self.bits > 160:
            raise ConfigurationError("bits must be in (0, 160]")
        if self.hop_delay < 0 or self.delay_jitter < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.store_backend not in BACKEND_NAMES:
            known = ", ".join(BACKEND_NAMES)
            raise ConfigurationError(
                f"unknown store backend {self.store_backend!r}; known: {known}"
            )
        # Delegates range validation of the compaction knobs to StoreTuning,
        # so engine- and store-level construction reject the same values.
        self.store_tuning
        if isinstance(self.altt_delta, str) and self.altt_delta != AUTO:
            raise ConfigurationError(
                f"altt_delta must be a number, None or {AUTO!r}"
            )
        if isinstance(self.altt_delta, (int, float)) and self.altt_delta < 0:
            raise ConfigurationError("altt_delta must be non-negative")
        if self.ric_window is not None and self.ric_window <= 0:
            raise ConfigurationError("ric_window must be positive")
        if self.ric_freshness is not None and self.ric_freshness < 0:
            raise ConfigurationError("ric_freshness must be non-negative")
        if self.ric_max_tracked_keys is not None and self.ric_max_tracked_keys <= 0:
            raise ConfigurationError("ric_max_tracked_keys must be positive")
        if self.gc_every_tuples <= 0:
            raise ConfigurationError("gc_every_tuples must be positive")
        if self.rebalance_every_tuples <= 0:
            raise ConfigurationError("rebalance_every_tuples must be positive")
        if not 0 < self.light_load_factor <= 1:
            raise ConfigurationError("light_load_factor must be in (0, 1]")
        if self.observability not in OBSERVABILITY_MODES:
            known = ", ".join(OBSERVABILITY_MODES)
            raise ConfigurationError(
                f"unknown observability mode {self.observability!r}; "
                f"known modes: {known}"
            )
        if self.trace_path is not None and self.observability == "off":
            raise ConfigurationError(
                "trace_path requires observability='on' (nothing would "
                "ever be written to it otherwise)"
            )

    @property
    def store_tuning(self) -> StoreTuning:
        """The backend tuning knobs packaged for the store factory."""
        return StoreTuning(
            compact_min_dead=self.append_log_compact_min_dead,
            compact_dead_fraction=self.append_log_compact_fraction,
        )

    def resolve_altt_delta(self, max_transit_delay: float) -> Optional[float]:
        """Translate the configured Δ into a concrete retention time.

        ``"auto"`` uses four times the maximum message transit delay, which
        comfortably satisfies the requirement of the eventual-completeness
        theorem (Δ must be at least one maximum transit time).
        """
        if self.altt_delta == AUTO:
            return 4.0 * max_transit_delay if max_transit_delay > 0 else None
        if self.altt_delta is None:
            return None
        return float(self.altt_delta)
