"""Parallel, resumable scenario-grid execution.

The grid runner fans the cells of a scenario (variant × strategy × seed —
see :mod:`repro.experiments.scenarios`) across worker processes and streams
one JSON document per completed cell to disk.  Re-running the same grid skips
every cell whose checkpoint file already exists with a matching schema
version and cell identity, so an interrupted sweep resumes where it stopped
instead of starting over.  After the sweep the per-seed results are
aggregated into mean/stddev statistics per (variant, strategy) group and
written to ``aggregate.json``.

Workers use ``multiprocessing`` with the ``fork`` start method when the
platform offers it (cheap on Linux) and fall back to ``spawn`` otherwise;
``workers <= 1`` runs the grid serially in-process, which is also the
reference the parallel speedup benchmark (``benchmarks/bench_parallel.py``)
compares against.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import Scenario, ScenarioCell, get_scenario
# Imported as a module (attributes resolved at call time) to keep the
# import graph acyclic: serialize itself imports repro.experiments.config,
# so a from-import of its names here would break whichever module is
# imported first.
from repro.metrics import serialize

AGGREGATE_FILENAME = "aggregate.json"


# ---------------------------------------------------------------------------
# per-cell execution (worker side)
# ---------------------------------------------------------------------------
def _cell_descriptor(cell: ScenarioCell) -> Dict[str, object]:
    return {
        "cell_id": cell.cell_id,
        "scenario": cell.scenario,
        "variant": cell.variant,
        "strategy": cell.strategy,
        "seed": cell.seed,
    }


def run_cell(cell: ScenarioCell) -> Dict[str, object]:
    """Run one grid cell and return its JSON-safe payload.

    Module-level so that it pickles under every multiprocessing start method.
    """
    started = time.perf_counter()
    result = run_experiment(cell.config)
    return {
        "schema_version": serialize.RESULT_SCHEMA_VERSION,
        "cell": _cell_descriptor(cell),
        "elapsed_seconds": time.perf_counter() - started,
        "result": serialize.result_to_dict(result),
    }


# ---------------------------------------------------------------------------
# outcomes and reports (parent side)
# ---------------------------------------------------------------------------
@dataclass
class CellOutcome:
    """One grid cell's result plus how it was obtained."""

    cell: ScenarioCell
    path: Path
    payload: Dict[str, object]
    cached: bool

    @property
    def summary(self) -> Dict[str, float]:
        return dict(self.payload["result"]["summary"])  # type: ignore[index]

    @property
    def derived(self) -> Dict[str, float]:
        derived = self.payload["result"].get("derived", {})  # type: ignore[index]
        return dict(derived)


@dataclass
class GridReport:
    """Everything a sweep produced: per-cell outcomes plus aggregates."""

    scenario: str
    axis: str
    output_dir: Path
    outcomes: List[CellOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def computed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    def groups(self) -> List[Dict[str, object]]:
        """Mean/stddev across seeds per (variant, strategy) group."""
        grouped: Dict[Tuple[str, str], List[CellOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(
                (outcome.cell.variant, outcome.cell.strategy), []
            ).append(outcome)
        aggregated: List[Dict[str, object]] = []
        for (variant, strategy), members in sorted(grouped.items()):
            aggregated.append(
                {
                    "variant": variant,
                    "strategy": strategy,
                    "seeds": sorted(member.cell.seed for member in members),
                    "summary": serialize.aggregate_metrics(
                        [member.summary for member in members]
                    ),
                    "derived": serialize.aggregate_metrics(
                        [member.derived for member in members]
                    ),
                }
            )
        return aggregated

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": serialize.RESULT_SCHEMA_VERSION,
            "scenario": self.scenario,
            "axis": self.axis,
            "cells": len(self.outcomes),
            "computed": self.computed,
            "cached": self.cached,
            "elapsed_seconds": self.elapsed_seconds,
            "groups": self.groups(),
        }


# ---------------------------------------------------------------------------
# checkpoint files
# ---------------------------------------------------------------------------
def cell_path(output_dir: Path, cell: ScenarioCell) -> Path:
    return output_dir / f"{cell.cell_id}.json"


def _write_json(path: Path, payload: Mapping[str, object]) -> None:
    """Write atomically: a crash mid-write must not leave a corrupt checkpoint."""
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)


def _load_checkpoint(
    path: Path, cell: ScenarioCell
) -> Optional[Dict[str, object]]:
    """A previously streamed cell payload, or None when it cannot be reused."""
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("schema_version") != serialize.RESULT_SCHEMA_VERSION:
        return None
    descriptor = payload.get("cell")
    if not isinstance(descriptor, dict) or descriptor.get("cell_id") != cell.cell_id:
        return None
    result = payload.get("result")
    if not isinstance(result, dict) or "summary" not in result:
        return None
    # A checkpoint only counts for the *same* experiment: overrides,
    # --full-scale or edited scenario definitions change the resolved config
    # without changing the cell id, and must recompute rather than reuse.
    if result.get("config") != serialize.config_to_dict(cell.config):
        return None
    return payload


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------------
# the grid runner
# ---------------------------------------------------------------------------
def run_grid(
    scenario: "Scenario | str",
    output_dir: "Path | str",
    workers: int = 1,
    seeds: Optional[Sequence[int]] = None,
    strategies: Optional[Sequence[str]] = None,
    overrides: Optional[Mapping[str, object]] = None,
    resume: bool = True,
    full_scale: Optional[bool] = None,
    progress: Optional[callable] = None,
) -> GridReport:
    """Run a scenario's full grid, fanning cells across ``workers`` processes.

    Parameters
    ----------
    scenario:
        A :class:`Scenario` or the name of a registered one.
    output_dir:
        Directory receiving one ``<cell_id>.json`` per cell plus
        ``aggregate.json``; created if missing.
    workers:
        Number of worker processes; ``<= 1`` runs serially in-process.
    seeds / strategies / overrides:
        Optional grid shape overrides (defaults come from the scenario).
    resume:
        Reuse existing per-cell checkpoint files instead of recomputing.
    progress:
        Optional callback invoked with every finished :class:`CellOutcome`.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if workers < 0:
        raise ExperimentError("workers must be non-negative")
    output_dir = Path(output_dir) / scenario.name
    output_dir.mkdir(parents=True, exist_ok=True)

    cells = scenario.cells(
        seeds=seeds,
        strategies=strategies,
        overrides=overrides,
        full_scale=full_scale,
    )
    started = time.perf_counter()
    outcomes_by_id: Dict[str, CellOutcome] = {}
    pending: List[ScenarioCell] = []
    for cell in cells:
        path = cell_path(output_dir, cell)
        payload = _load_checkpoint(path, cell) if resume else None
        if payload is not None:
            outcome = CellOutcome(cell=cell, path=path, payload=payload, cached=True)
            outcomes_by_id[cell.cell_id] = outcome
            if progress is not None:
                progress(outcome)
        else:
            pending.append(cell)

    def _record(cell: ScenarioCell, payload: Dict[str, object]) -> None:
        path = cell_path(output_dir, cell)
        _write_json(path, payload)
        outcome = CellOutcome(cell=cell, path=path, payload=payload, cached=False)
        outcomes_by_id[cell.cell_id] = outcome
        if progress is not None:
            progress(outcome)

    if pending:
        if workers <= 1:
            for cell in pending:
                _record(cell, run_cell(cell))
        else:
            cells_by_id = {cell.cell_id: cell for cell in pending}
            ctx = _pool_context()
            with ctx.Pool(processes=min(workers, len(pending))) as pool:
                # Stream checkpoints as cells finish (imap_unordered), so an
                # interrupted run keeps everything completed so far.
                for payload in pool.imap_unordered(run_cell, pending):
                    cell_id = payload["cell"]["cell_id"]  # type: ignore[index]
                    _record(cells_by_id[cell_id], payload)

    report = GridReport(
        scenario=scenario.name,
        axis=scenario.axis,
        output_dir=output_dir,
        outcomes=[
            outcomes_by_id[cell.cell_id]
            for cell in cells
            if cell.cell_id in outcomes_by_id
        ],
        elapsed_seconds=time.perf_counter() - started,
    )
    _write_json(output_dir / AGGREGATE_FILENAME, report.to_dict())
    return report


def load_cells(result_dir: "Path | str") -> Dict[str, Dict[str, object]]:
    """Read every per-cell checkpoint of a grid result directory.

    Returns ``cell_id -> payload`` for every parseable ``<cell_id>.json``
    (the ``aggregate.json`` summary and unreadable files are skipped).
    """
    directory = Path(result_dir)
    if not directory.is_dir():
        raise ExperimentError(f"no grid result directory at {directory}")
    cells: Dict[str, Dict[str, object]] = {}
    for path in sorted(directory.glob("*.json")):
        if path.name == AGGREGATE_FILENAME:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        descriptor = payload.get("cell")
        if not isinstance(descriptor, dict):
            continue
        cell_id = descriptor.get("cell_id")
        if isinstance(cell_id, str) and cell_id:
            cells[cell_id] = payload
    return cells


def _cell_metric(payload: Mapping[str, object], name: str) -> Optional[float]:
    """Look ``name`` up among a cell's derived metrics, then its summary."""
    result = payload.get("result")
    if not isinstance(result, dict):
        return None
    for section in ("derived", "summary"):
        values = result.get(section)
        if isinstance(values, dict) and name in values:
            try:
                return float(values[name])
            except (TypeError, ValueError):
                return None
    return None


def diff_grids(
    dir_a: "Path | str",
    dir_b: "Path | str",
    metrics: Sequence[str],
) -> Dict[str, object]:
    """Compare two grid result directories cell-by-cell.

    For every cell id present in both directories the requested metrics are
    paired up (value in A, value in B, absolute delta); cells present in
    only one directory are listed separately so a regression diff cannot
    silently drop coverage.
    """
    cells_a = load_cells(dir_a)
    cells_b = load_cells(dir_b)
    shared = sorted(set(cells_a) & set(cells_b))
    compared: List[Dict[str, object]] = []
    for cell_id in shared:
        entry: Dict[str, object] = {"cell_id": cell_id, "metrics": {}}
        for metric in metrics:
            value_a = _cell_metric(cells_a[cell_id], metric)
            value_b = _cell_metric(cells_b[cell_id], metric)
            delta = (
                value_b - value_a
                if value_a is not None and value_b is not None
                else None
            )
            entry["metrics"][metric] = {"a": value_a, "b": value_b, "delta": delta}
        compared.append(entry)
    return {
        "dir_a": str(dir_a),
        "dir_b": str(dir_b),
        "metrics": list(metrics),
        "cells": compared,
        "only_in_a": sorted(set(cells_a) - set(cells_b)),
        "only_in_b": sorted(set(cells_b) - set(cells_a)),
    }


def load_aggregate(output_dir: "Path | str", scenario_name: str) -> Dict[str, object]:
    """Read a previously written ``aggregate.json`` for ``scenario_name``."""
    path = Path(output_dir) / scenario_name / AGGREGATE_FILENAME
    if not path.is_file():
        raise ExperimentError(
            f"no aggregate found at {path}; run the grid first "
            f"(python -m repro.experiments run --scenario {scenario_name})"
        )
    return json.loads(path.read_text())
