"""Wall-clock speedup of the parallel grid runner vs the serial loop.

Times the same scenario grid three ways and records everything in
``benchmarks/BENCH_parallel.json``:

* **serial** — the plain in-process loop (``workers=1``, no checkpoint
  reuse): what running the grid through the old figure-style harness costs,
* **parallel (cold)** — fanned across worker processes, fresh output
  directory.  ``cold_speedup = serial / parallel`` exceeds 1 whenever the
  host has more than one core; on a single-core host the process fan-out
  cannot beat the serial loop (the GIL-free workers still timeshare one
  CPU), which the report calls out via ``cpu_count``/``single_core_host``,
* **parallel (resume)** — re-running the sweep over the already streamed
  per-cell checkpoints, the driver's steady state when a grid is interrupted
  or extended.  This beats the serial loop on wall-clock on any host.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke]
        [--workers N] [--scenario NAME] [--output PATH]

``--smoke`` shrinks every cell to a correctness sweep (used by
``run_all.py`` / the ``bench_smoke`` marker); the recorded speedups are only
meaningful in the default mode, where each cell carries real work.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.parallel import run_grid

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_parallel.json"
DEFAULT_SCENARIO = "skew-sweep"
DEFAULT_WORKERS = 4

#: Grid sizing for the timed run: ten cells (5 thetas × 2 seeds) at the
#: scenario's default sizes — each cell carries over a second of real
#: experiment work, so process fan-out pays for itself.
DEFAULT_SEEDS = (41, 42)
DEFAULT_OVERRIDES: Dict[str, object] = {}
SMOKE_SEEDS = (41,)
SMOKE_OVERRIDES = {
    "num_nodes": 12,
    "num_queries": 8,
    "num_tuples": 6,
    "warmup_tuples": 0,
}


def run_bench(
    scenario: str = DEFAULT_SCENARIO,
    workers: int = DEFAULT_WORKERS,
    smoke: bool = False,
) -> Dict[str, object]:
    """Time the serial and the parallel sweep of one scenario grid."""
    seeds: List[int] = list(SMOKE_SEEDS if smoke else DEFAULT_SEEDS)
    overrides = dict(SMOKE_OVERRIDES if smoke else DEFAULT_OVERRIDES)
    with tempfile.TemporaryDirectory(prefix="bench_parallel_") as tmp:
        serial = run_grid(
            scenario,
            Path(tmp) / "serial",
            workers=1,
            seeds=seeds,
            overrides=overrides,
            resume=False,
        )
        parallel = run_grid(
            scenario,
            Path(tmp) / "parallel",
            workers=workers,
            seeds=seeds,
            overrides=overrides,
            resume=False,
        )
        resumed = run_grid(
            scenario,
            Path(tmp) / "parallel",
            workers=workers,
            seeds=seeds,
            overrides=overrides,
            resume=True,
        )
    # Both sweeps must have produced identical per-cell metrics: the speedup
    # only counts if the parallel path computes the same grid.
    serial_summaries = {
        outcome.cell.cell_id: outcome.summary for outcome in serial.outcomes
    }
    parallel_summaries = {
        outcome.cell.cell_id: outcome.summary for outcome in parallel.outcomes
    }
    if serial_summaries != parallel_summaries:
        raise AssertionError("parallel grid results diverged from serial")
    if resumed.computed != 0:
        raise AssertionError("resume pass recomputed cells it should have cached")
    cpu_count = multiprocessing.cpu_count()

    def _speedup(seconds: float) -> float:
        return serial.elapsed_seconds / seconds if seconds > 0 else 0.0

    return {
        "scenario": scenario,
        "cells": len(serial.outcomes),
        "workers": workers,
        "cpu_count": cpu_count,
        "single_core_host": cpu_count == 1,
        "smoke": smoke,
        "serial_seconds": serial.elapsed_seconds,
        "parallel_seconds": parallel.elapsed_seconds,
        "resume_seconds": resumed.elapsed_seconds,
        "cold_speedup": _speedup(parallel.elapsed_seconds),
        "resume_speedup": _speedup(resumed.elapsed_seconds),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes (correctness sweep only)"
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--scenario", default=DEFAULT_SCENARIO)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    report = run_bench(
        scenario=args.scenario, workers=args.workers, smoke=args.smoke
    )
    print(
        f"{report['scenario']}: {report['cells']} cells — "
        f"serial {report['serial_seconds']:.2f}s, "
        f"parallel({report['workers']}) {report['parallel_seconds']:.2f}s "
        f"({report['cold_speedup']:.2f}x), "
        f"resume {report['resume_seconds']:.2f}s "
        f"({report['resume_speedup']:.2f}x)"
    )
    if report["single_core_host"]:
        print(
            "note: single-core host — process fan-out cannot beat the serial "
            "loop cold; see resume_speedup for the driver's steady state"
        )
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
