"""Fixture backend violating every clause of the store contract."""


class RogueBackend:
    # VIOLATION: does not inherit StoreBackend (no batch fallbacks apply).
    # VIOLATION: never implements the abstract ``match``.

    def __init__(self):
        self._rows = {}

    def add(self, key, tup):
        self._rows.setdefault(key, []).append(tup)

    def match_batch(self, keys, eager=False):
        # VIOLATION: renames/extends the batch-contract signature.
        return [self._rows.get(key, []) for key in keys]
