"""Indexing-candidate enumeration and indexing strategies (Section 6).

Where a query waits for tuples determines how much traffic and processing its
continuous evaluation costs.  RJoin enumerates the legal indexing candidates
of a query and chooses among them based on the predicted rate of incoming
tuples:

* **input queries** may be indexed under any relation-attribute pair that
  appears in their where clause (attribute level),
* **rewritten queries** may be indexed under (a) relation-attribute pairs of
  their remaining join conditions, (b) relation-attribute-value triples of
  their explicit selections, and (c) triples implied by the where clause
  (value level).

Four strategies are provided, matching the variants evaluated in Figure 2:

* :class:`RJoinStrategy` — pick the candidate with the *lowest* predicted
  rate (ties prefer value-level keys, which always see a subset of the
  corresponding attribute-level traffic),
* :class:`RandomStrategy` — pick uniformly at random,
* :class:`WorstStrategy` — pick the candidate with the *highest* rate (the
  paper's worst-case variation; it consults a simulation-level oracle instead
  of issuing RIC traffic, so the "Request RIC" series applies to RJoin only),
* :class:`FirstCandidateStrategy` — pick the first candidate in where-clause
  order (the naive behaviour described before Section 6).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from functools import lru_cache
from typing import List, Mapping, Sequence, Tuple

from repro.core.keys import IndexKey, attribute_key, value_key
from repro.errors import ConfigurationError
from repro.sql.ast import Query
from repro.sql.predicates import all_selections


# ---------------------------------------------------------------------------
# candidate enumeration
# ---------------------------------------------------------------------------
# Candidate enumeration is memoized by query value: the AST is a frozen
# dataclass, so structurally identical queries — the million-query flood
# shape, and the identical rewritten states that multi-query sharing
# canonicalizes — hash to the same entry and enumerate once.  Queries whose
# selection constants are unhashable fall back to direct enumeration.
def input_query_candidates(query: Query) -> List[IndexKey]:
    """Attribute-level candidates of an input query.

    Every ``RelName.AttName`` expression in the where clause is a legal
    choice; when the query has no where clause at all (single-relation scan)
    the select-list attributes are used instead so that the query still meets
    every tuple of its relation.
    """
    try:
        return list(_input_candidates_cached(query))
    except TypeError:
        return list(_enumerate_input_candidates(query))


def rewritten_query_candidates(
    query: Query, allow_attribute_level: bool = True
) -> List[IndexKey]:
    """Candidates of a rewritten query: families (b), (c) and optionally (a).

    Value-level candidates come first (explicit selections, then implied
    ones), followed by attribute-level join pairs when
    ``allow_attribute_level`` is set.  The order defines the behaviour of
    :class:`FirstCandidateStrategy` and the deterministic tie-breaking of the
    rate-based strategies.
    """
    try:
        return list(_rewritten_candidates_cached(query, allow_attribute_level))
    except TypeError:
        return list(_enumerate_rewritten_candidates(query, allow_attribute_level))


@lru_cache(maxsize=8192)
def _input_candidates_cached(query: Query) -> Tuple[IndexKey, ...]:
    return _enumerate_input_candidates(query)


@lru_cache(maxsize=8192)
def _rewritten_candidates_cached(
    query: Query, allow_attribute_level: bool
) -> Tuple[IndexKey, ...]:
    return _enumerate_rewritten_candidates(query, allow_attribute_level)


def _enumerate_input_candidates(query: Query) -> Tuple[IndexKey, ...]:
    candidates: List[IndexKey] = []
    seen = set()

    def _add(relation: str, attribute: str) -> None:
        key = attribute_key(relation, attribute)
        if key.text not in seen:
            seen.add(key.text)
            candidates.append(key)

    for jp in query.join_predicates:
        _add(jp.left.relation, jp.left.attribute)
        _add(jp.right.relation, jp.right.attribute)
    for sp in query.selection_predicates:
        _add(sp.attribute.relation, sp.attribute.attribute)
    if not candidates:
        for item in query.select_items:
            if hasattr(item, "relation"):
                _add(item.relation, item.attribute)  # type: ignore[union-attr]
    return tuple(candidates)


def _enumerate_rewritten_candidates(
    query: Query, allow_attribute_level: bool
) -> Tuple[IndexKey, ...]:
    candidates: List[IndexKey] = []
    seen = set()

    def _add(key: IndexKey) -> None:
        if key.text not in seen:
            seen.add(key.text)
            candidates.append(key)

    for sp in all_selections(query):
        if sp.attribute.relation in query.relations:
            _add(value_key(sp.attribute.relation, sp.attribute.attribute, sp.value))
    if allow_attribute_level:
        for jp in query.join_predicates:
            _add(attribute_key(jp.left.relation, jp.left.attribute))
            _add(attribute_key(jp.right.relation, jp.right.attribute))
    if not candidates:
        # Degenerate queries (no usable selection and attribute-level keys
        # disallowed): fall back to attribute-level pairs so that the query
        # can still be indexed somewhere.
        for ref in query.attribute_refs():
            if ref.relation in query.relations:
                _add(attribute_key(ref.relation, ref.attribute))
    return tuple(candidates)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
class IndexingStrategy(ABC):
    """Decides under which candidate key a (rewritten) query is indexed."""

    #: Whether the strategy needs distributed RIC collection (extra messages).
    requires_ric: bool = False
    #: Whether the strategy consults the simulation-level rate oracle.
    uses_oracle: bool = False
    #: Short name used in configurations and reports.
    name: str = "strategy"

    @abstractmethod
    def choose(
        self,
        candidates: Sequence[IndexKey],
        rates: Mapping[str, float],
        rng: random.Random,
    ) -> IndexKey:
        """Pick one candidate.  ``rates`` maps key text to the observed rate."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _rate_of(key: IndexKey, rates: Mapping[str, float]) -> float:
    return float(rates.get(key.text, 0.0))


def _tie_break(key: IndexKey) -> tuple:
    """Deterministic tie-break: prefer value-level keys, then lexicographic order."""
    return (0 if key.is_value_level else 1, key.text)


class RJoinStrategy(IndexingStrategy):
    """Index where the predicted tuple rate is lowest (the paper's choice)."""

    requires_ric = True
    name = "rjoin"

    def choose(
        self,
        candidates: Sequence[IndexKey],
        rates: Mapping[str, float],
        rng: random.Random,
    ) -> IndexKey:
        if not candidates:
            raise ConfigurationError("cannot choose among zero candidates")
        return min(candidates, key=lambda key: (_rate_of(key, rates), _tie_break(key)))


class WorstStrategy(IndexingStrategy):
    """Always make the worst possible choice (highest rate) — Figure 2 baseline."""

    uses_oracle = True
    name = "worst"

    def choose(
        self,
        candidates: Sequence[IndexKey],
        rates: Mapping[str, float],
        rng: random.Random,
    ) -> IndexKey:
        if not candidates:
            raise ConfigurationError("cannot choose among zero candidates")
        return max(
            candidates,
            key=lambda key: (
                _rate_of(key, rates),
                0 if not key.is_value_level else -1,
                key.text,
            ),
        )


class RandomStrategy(IndexingStrategy):
    """Choose uniformly at random among the candidates — Figure 2 baseline."""

    name = "random"

    def choose(
        self,
        candidates: Sequence[IndexKey],
        rates: Mapping[str, float],
        rng: random.Random,
    ) -> IndexKey:
        if not candidates:
            raise ConfigurationError("cannot choose among zero candidates")
        return rng.choice(list(candidates))


class FirstCandidateStrategy(IndexingStrategy):
    """Choose the first candidate in where-clause order (naive Section 3 behaviour)."""

    name = "first"

    def choose(
        self,
        candidates: Sequence[IndexKey],
        rates: Mapping[str, float],
        rng: random.Random,
    ) -> IndexKey:
        if not candidates:
            raise ConfigurationError("cannot choose among zero candidates")
        return candidates[0]


_STRATEGIES = {
    "rjoin": RJoinStrategy,
    "worst": WorstStrategy,
    "random": RandomStrategy,
    "first": FirstCandidateStrategy,
}


def make_strategy(name: str) -> IndexingStrategy:
    """Instantiate a strategy by name (``rjoin``, ``worst``, ``random``, ``first``)."""
    try:
        return _STRATEGIES[name.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown indexing strategy {name!r}; expected one of "
            f"{sorted(_STRATEGIES)}"
        ) from None


def available_strategies() -> List[str]:
    """Names of all registered strategies."""
    return sorted(_STRATEGIES)
