"""Tests for the id-movement integration (Figure 9 machinery)."""

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.errors import EngineError
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


def build(seed=5, **overrides):
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        seed=seed,
    )
    generator = WorkloadGenerator(spec)
    params = dict(num_nodes=16, seed=seed)
    params.update(overrides)
    engine = RJoinEngine(RJoinConfig(**params))
    engine.register_catalog(generator.catalog)
    return generator, engine


class TestIdMovement:
    def test_rebalance_requires_enabled_config(self):
        _, engine = build(id_movement=False)
        with pytest.raises(EngineError):
            engine.rebalance()

    def test_rebalance_moves_nodes_and_rehomes_state(self):
        generator, engine = build(id_movement=True, rebalance_every_tuples=10_000)
        for query in generator.generate_queries(6):
            engine.submit(query)
        for generated in generator.generate_tuples(30):
            engine.publish(generated.relation, generated.values)
        moves = engine.rebalance()
        assert moves >= 0
        # After re-homing, every stored item lives at the node responsible for its key.
        for node in engine.nodes.values():
            for key_text in list(node.input_queries) + list(node.rewritten_queries):
                assert engine.ring.owner_of_key(key_text).address == node.address
            for key_text in node.tuple_store.keys():
                assert engine.ring.owner_of_key(key_text).address == node.address

    def test_answers_preserved_with_periodic_rebalancing(self):
        """Id movement is transparent to query results (same answers as the oracle)."""
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=21,
        )
        generator = WorkloadGenerator(spec)
        engine = RJoinEngine(
            RJoinConfig(
                num_nodes=16, seed=21, id_movement=True, rebalance_every_tuples=10
            )
        )
        engine.register_catalog(generator.catalog)
        reference = ReferenceEngine(generator.catalog)
        handles = []
        for query in generator.generate_queries(6):
            handle = engine.submit(query)
            reference.submit(
                query, query_id=handle.query_id, insertion_time=handle.insertion_time
            )
            handles.append(handle)
        for generated in generator.generate_tuples(50):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        for handle in handles:
            got = sorted(repr(v) for v in handle.values())
            expected = sorted(repr(v) for v in reference.answers(handle.query_id))
            assert got == expected

    def test_rebalancing_reduces_peak_storage(self):
        """The most loaded node should not get worse when id movement is enabled."""
        def peak_storage(id_movement):
            generator, engine = build(
                seed=33,
                id_movement=id_movement,
                rebalance_every_tuples=10,
            )
            for query in generator.generate_queries(10):
                engine.submit(query)
            for generated in generator.generate_tuples(60):
                engine.publish(generated.relation, generated.values)
            distribution = engine.storage_distribution(current=True)
            return distribution[0] if distribution else 0

        with_movement = peak_storage(True)
        without_movement = peak_storage(False)
        assert with_movement <= without_movement
