"""Tests for incremental query rewriting (the heart of RJoin)."""

import pytest

from repro.core.rewriting import DEAD, rewrite_chain, rewrite_query
from repro.data.schema import AttributeRef, Catalog
from repro.data.tuples import Tuple
from repro.errors import RewriteError
from repro.sql.ast import Constant
from repro.sql.parser import parse_query


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.add_relation("R", ["A", "B", "C"])
    catalog.add_relation("S", ["A", "B", "C"])
    catalog.add_relation("P", ["A", "B", "C"])
    return catalog


def make_tuple(catalog, relation, values, **kwargs):
    return Tuple.from_schema(catalog.get(relation), values, **kwargs)


class TestRewriteStep:
    def test_paper_example_first_rewrite(self, catalog):
        """The q1 -> q2 rewrite of Section 3 (tuple t = (3, 5) of R)."""
        q1 = parse_query(
            "SELECT R.B, S.B FROM R, S, P WHERE R.A = S.A AND S.B = P.B",
            catalog=catalog,
        )
        t = make_tuple(catalog, "R", (3, 5, 0))
        result = rewrite_query(q1, t, catalog.get("R"))
        assert result.alive
        q2 = result.query
        assert q2.relations == ("S", "P")
        # select list: R.B replaced by 5, S.B untouched
        assert q2.select_items == (Constant(5), AttributeRef("S", "B"))
        # R.A = S.A became the selection S.A = 3
        assert any(
            sp.attribute == AttributeRef("S", "A") and sp.value == 3
            for sp in q2.selection_predicates
        )
        # the other join is untouched
        assert len(q2.join_predicates) == 1

    def test_arity_and_join_count_decrease(self, catalog):
        query = parse_query(
            "SELECT R.A FROM R, S, P WHERE R.A = S.A AND S.B = P.B", catalog=catalog
        )
        result = rewrite_query(
            query, make_tuple(catalog, "S", (1, 2, 3)), catalog.get("S")
        )
        assert result.query.arity == query.arity - 1
        assert result.query.num_joins == 0
        assert len(result.query.selection_predicates) == 2

    def test_satisfied_selection_is_dropped(self, catalog):
        query = parse_query(
            "SELECT R.A FROM R, S WHERE R.A = S.A AND R.B = 7", catalog=catalog
        )
        tup = make_tuple(catalog, "R", (1, 7, 0))
        result = rewrite_query(query, tup, catalog.get("R"))
        assert result.alive
        assert all(
            sp.attribute.relation != "R" for sp in result.query.selection_predicates
        )

    def test_violated_selection_is_dead(self, catalog):
        query = parse_query(
            "SELECT R.A FROM R, S WHERE R.A = S.A AND R.B = 7", catalog=catalog
        )
        tup = make_tuple(catalog, "R", (1, 8, 0))
        result = rewrite_query(query, tup, catalog.get("R"))
        assert result.dead
        assert result is DEAD or result.query is None

    def test_contradictory_derived_selections_are_dead(self, catalog):
        # S joins R on two attributes; an R tuple with different values for
        # them makes the combination unsatisfiable for any single S tuple
        # only when the derived constants contradict an existing selection.
        query = parse_query(
            "SELECT S.C FROM R, S WHERE R.A = S.A AND S.A = 5", catalog=catalog
        )
        dead = rewrite_query(
            query, make_tuple(catalog, "R", (4, 0, 0)), catalog.get("R")
        )
        assert dead.dead
        alive = rewrite_query(
            query, make_tuple(catalog, "R", (5, 0, 0)), catalog.get("R")
        )
        assert alive.alive

    def test_completion_produces_answer_values(self, catalog):
        query = parse_query(
            "SELECT R.A, S.B FROM R, S WHERE R.B = S.A", catalog=catalog
        )
        first = rewrite_query(
            query, make_tuple(catalog, "R", (1, 2, 3)), catalog.get("R")
        )
        assert first.alive
        second = rewrite_query(
            first.query, make_tuple(catalog, "S", (2, 9, 0)), catalog.get("S")
        )
        assert second.complete
        assert second.query.answer_values() == (1, 9)

    def test_completion_requires_matching_value(self, catalog):
        query = parse_query("SELECT R.A FROM R, S WHERE R.B = S.A", catalog=catalog)
        first = rewrite_query(
            query, make_tuple(catalog, "R", (1, 2, 3)), catalog.get("R")
        )
        second = rewrite_query(
            first.query, make_tuple(catalog, "S", (99, 0, 0)), catalog.get("S")
        )
        assert second.dead

    def test_wrong_relation_raises(self, catalog):
        query = parse_query("SELECT R.A FROM R, S WHERE R.B = S.A", catalog=catalog)
        result = rewrite_query(
            query, make_tuple(catalog, "R", (1, 2, 3)), catalog.get("R")
        )
        with pytest.raises(RewriteError):
            rewrite_query(
                result.query, make_tuple(catalog, "R", (1, 2, 3)), catalog.get("R")
            )

    def test_single_relation_selection_query(self, catalog):
        query = parse_query("SELECT R.A FROM R WHERE R.B = 5", catalog=catalog)
        match = rewrite_query(
            query, make_tuple(catalog, "R", (1, 5, 0)), catalog.get("R")
        )
        assert match.complete
        assert match.query.answer_values() == (1,)
        miss = rewrite_query(
            query, make_tuple(catalog, "R", (1, 6, 0)), catalog.get("R")
        )
        assert miss.dead

    def test_window_and_distinct_preserved(self, catalog):
        query = parse_query(
            "SELECT DISTINCT R.A FROM R, S WHERE R.B = S.A WINDOW 10 TUPLES",
            catalog=catalog,
        )
        result = rewrite_query(
            query, make_tuple(catalog, "R", (1, 2, 3)), catalog.get("R")
        )
        assert result.query.distinct
        assert result.query.window == query.window


class TestRewriteChain:
    def test_full_chain_from_the_paper_example(self, catalog):
        """Figure 1: q over R, S, J, M answered by t1..t4 (J, M modelled by P here)."""
        catalog.add_relation("J", ["A", "B", "C"])
        catalog.add_relation("M", ["A", "B", "C"])
        query = parse_query(
            "SELECT S.B, M.A FROM R, S, J, M "
            "WHERE R.A = S.A AND S.B = J.B AND J.C = M.C",
            catalog=catalog,
        )
        schemas = {name: catalog.get(name) for name in ("R", "S", "J", "M")}
        t1 = make_tuple(catalog, "R", (2, 5, 8))
        t2 = make_tuple(catalog, "S", (2, 6, 3))
        t4 = make_tuple(catalog, "J", (7, 6, 2))
        t3 = make_tuple(catalog, "M", (9, 1, 2))
        result = rewrite_chain(query, [t1, t2, t4, t3], schemas)
        assert result.complete
        assert result.query.answer_values() == (6, 9)

    def test_chain_dies_on_mismatch(self, catalog):
        query = parse_query("SELECT R.A FROM R, S WHERE R.B = S.A", catalog=catalog)
        schemas = {"R": catalog.get("R"), "S": catalog.get("S")}
        result = rewrite_chain(
            query,
            [make_tuple(catalog, "R", (1, 2, 3)), make_tuple(catalog, "S", (4, 4, 4))],
            schemas,
        )
        assert result.dead

    def test_partial_chain_stays_alive(self, catalog):
        query = parse_query(
            "SELECT R.A FROM R, S, P WHERE R.B = S.A AND S.B = P.A", catalog=catalog
        )
        schemas = {name: catalog.get(name) for name in ("R", "S", "P")}
        result = rewrite_chain(query, [make_tuple(catalog, "R", (1, 2, 3))], schemas)
        assert result.alive
        assert result.query.arity == 2
