"""``python -m repro.obs`` — inspect a recorded trace file.

Two subcommands over the JSONL span stream an ``observability="on"`` run
produces::

    python -m repro.obs summarize TRACE.jsonl [--top N]
    python -m repro.obs convert TRACE.jsonl --output trace.json

``summarize`` prints the run's shape: span/trace totals, the hop breakdown
per message kind, the slowest end-to-end traces with their critical path
(the chain of spans from the root to the last delivery), and the slowest
individual spans.  ``convert`` writes Chrome ``trace_event`` JSON for
``chrome://tracing`` / https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence, TextIO

from repro.errors import ObservabilityError, ReproError
from repro.obs.export import write_chrome_trace
from repro.obs.trace import Span, load_spans


def _traces(spans: Sequence[Span]) -> Dict[str, List[Span]]:
    """Spans grouped by trace id, preserving recording order."""
    grouped: Dict[str, List[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    return grouped


def critical_path(trace_spans: Sequence[Span]) -> List[Span]:
    """The root-to-latest chain of one trace.

    Walks parent links upward from the span that finished last; the
    returned list is ordered root first.
    """
    if not trace_spans:
        return []
    by_id = {span.span_id: span for span in trace_spans}
    cursor: Optional[Span] = max(trace_spans, key=lambda s: (s.end, s.span_id))
    path: List[Span] = []
    visited = set()
    while cursor is not None and cursor.span_id not in visited:
        visited.add(cursor.span_id)
        path.append(cursor)
        parent = cursor.parent_id
        cursor = by_id.get(parent) if parent is not None else None
    path.reverse()
    return path


def _trace_latency(trace_spans: Sequence[Span]) -> float:
    """End-to-end logical latency of one trace (first start to last end)."""
    return max(s.end for s in trace_spans) - min(s.start for s in trace_spans)


def summarize(spans: Sequence[Span], out: TextIO, top: int = 5) -> None:
    """Print the human-readable trace summary."""
    if not spans:
        out.write("empty trace: no spans recorded\n")
        return
    grouped = _traces(spans)
    nodes = {span.node for span in spans}
    out.write(
        f"{len(spans)} spans in {len(grouped)} traces across "
        f"{len(nodes)} nodes\n"
    )

    # Hop breakdown per message kind: where the network traffic goes.
    out.write("\nhop breakdown by message kind:\n")
    by_kind: Dict[str, List[Span]] = {}
    for span in spans:
        by_kind.setdefault(span.name, []).append(span)
    for kind in sorted(by_kind, key=lambda k: -len(by_kind[k])):
        kind_spans = by_kind[kind]
        hops = sum(span.hops for span in kind_spans)
        transit = sum(span.start - span.sent_at for span in kind_spans)
        mean_delay = transit / len(kind_spans)
        out.write(
            f"  {kind:<24} {len(kind_spans):>7} deliveries "
            f"{hops:>8} hops  mean transit {mean_delay:.2f}\n"
        )

    # Slowest traces end to end, with their critical path.
    ranked = sorted(grouped.items(), key=lambda item: -_trace_latency(item[1]))
    out.write(f"\nslowest {min(top, len(ranked))} traces (end-to-end):\n")
    for trace_id, trace_spans in ranked[:top]:
        latency = _trace_latency(trace_spans)
        path = critical_path(trace_spans)
        chain = " -> ".join(f"{span.name}@{span.node}" for span in path)
        out.write(
            f"  {trace_id:<20} latency {latency:>8.2f} "
            f"({len(trace_spans)} spans)\n"
        )
        out.write(f"    critical path: {chain}\n")

    # Slowest individual spans (logical handler-visible duration).
    slowest = sorted(spans, key=lambda span: -span.duration)[:top]
    out.write(f"\nslowest {len(slowest)} spans:\n")
    for span in slowest:
        out.write(
            f"  {span.name:<24} on {span.node:<12} trace {span.trace_id:<18}"
            f" duration {span.duration:.2f} (hop {span.hop})\n"
        )


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """CLI entry point; returns a process exit code."""
    import sys

    stream = sys.stdout if out is None else out
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    cmd_summarize = commands.add_parser(
        "summarize", help="print span/trace statistics for a trace file"
    )
    cmd_summarize.add_argument("trace", help="JSONL trace file to read")
    cmd_summarize.add_argument(
        "--top", type=int, default=5, help="slowest traces/spans to show"
    )

    cmd_convert = commands.add_parser(
        "convert", help="write Chrome/Perfetto trace_event JSON"
    )
    cmd_convert.add_argument("trace", help="JSONL trace file to read")
    cmd_convert.add_argument(
        "--output", required=True, help="Chrome trace JSON file to write"
    )

    args = parser.parse_args(argv)
    try:
        spans = load_spans(args.trace)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.command == "summarize":
        if args.top <= 0:
            print("error: --top must be positive", file=sys.stderr)
            return 1
        summarize(spans, stream, top=args.top)
        return 0
    try:
        events = write_chrome_trace(spans, args.output)
    except (OSError, ObservabilityError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    stream.write(
        f"wrote {events} trace events to {args.output} "
        "(load in chrome://tracing or ui.perfetto.dev)\n"
    )
    return 0
