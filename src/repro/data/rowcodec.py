"""Packed row encoding for tuple values (the sqlite payload format).

The sqlite backend used to serialize every stored tuple's values with
:mod:`pickle`, which put a C-extension round trip (plus object graph
traversal) on the per-record hot path of prefix matching.  This module
replaces it with a schema-aware packed encoding tuned for the values the
workload actually produces:

* ``I`` — the homogeneous fast path: every value is a plain ``int`` fitting
  a signed 64-bit word.  The payload is one ``struct`` pack of the whole
  row, so both directions are a single C call.
* ``V`` — mixed scalars: a one-byte tag per value (``n`` None, ``t``/``f``
  booleans, ``i`` int64, ``d`` float, ``s`` UTF-8 string, ``b`` bytes with
  a 4-byte length prefix each for the variable-width kinds).
* ``P`` — the compatibility fallback: any value outside the scalar kinds
  above (nested containers, arbitrary objects, ints beyond 64 bits) pickles
  the whole row, so exotic values still round-trip exactly — the
  cross-backend answer-equality tests rely on that.

The first byte of every payload is the format marker, so the three formats
can coexist in one table and the decoder never guesses.
"""

from __future__ import annotations

import pickle
import struct

from repro.errors import CodecError
from typing import Dict, Tuple as TupleT

__all__ = ["pack_values", "unpack_values"]

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Cached whole-row Struct per arity for the homogeneous-int fast path.
_ROW_STRUCTS: Dict[int, struct.Struct] = {}

_Q = struct.Struct(">q")   # int64
_D = struct.Struct(">d")   # float
_L = struct.Struct(">I")   # length prefix


def _row_struct(arity: int) -> struct.Struct:
    cached = _ROW_STRUCTS.get(arity)
    if cached is None:
        cached = _ROW_STRUCTS[arity] = struct.Struct(f">{arity}q")
    return cached


def _pickle_row(values: TupleT) -> bytes:
    return b"P" + pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)


def pack_values(values: TupleT) -> bytes:
    """Encode a row of tuple values into the packed payload format."""
    # Fast path: all plain ints within int64 (bool is excluded — it would
    # silently decode as int and break exact round-tripping).
    if all(
        type(value) is int and _INT64_MIN <= value <= _INT64_MAX
        for value in values
    ):
        return b"I" + _row_struct(len(values)).pack(*values)
    parts = [b"V"]
    for value in values:
        kind = type(value)
        if kind is int:
            if not _INT64_MIN <= value <= _INT64_MAX:
                return _pickle_row(values)
            parts.append(b"i" + _Q.pack(value))
        elif kind is str:
            encoded = value.encode("utf-8")
            parts.append(b"s" + _L.pack(len(encoded)) + encoded)
        elif kind is float:
            parts.append(b"d" + _D.pack(value))
        elif value is None:
            parts.append(b"n")
        elif value is True:
            parts.append(b"t")
        elif value is False:
            parts.append(b"f")
        elif kind is bytes:
            parts.append(b"b" + _L.pack(len(value)) + value)
        else:
            return _pickle_row(values)
    return b"".join(parts)


def unpack_values(payload: bytes) -> TupleT:
    """Decode a payload produced by :func:`pack_values`."""
    marker = payload[0]
    if marker == 73:  # b"I"
        return _row_struct((len(payload) - 1) >> 3).unpack_from(payload, 1)
    if marker == 80:  # b"P"
        return pickle.loads(payload[1:])
    # b"V": walk the tagged scalars.
    values = []
    offset = 1
    length = len(payload)
    while offset < length:
        tag = payload[offset]
        offset += 1
        if tag == 105:  # i
            values.append(_Q.unpack_from(payload, offset)[0])
            offset += 8
        elif tag == 115:  # s
            (size,) = _L.unpack_from(payload, offset)
            offset += 4
            values.append(payload[offset : offset + size].decode("utf-8"))
            offset += size
        elif tag == 100:  # d
            values.append(_D.unpack_from(payload, offset)[0])
            offset += 8
        elif tag == 110:  # n
            values.append(None)
        elif tag == 116:  # t
            values.append(True)
        elif tag == 102:  # f
            values.append(False)
        elif tag == 98:  # b
            (size,) = _L.unpack_from(payload, offset)
            offset += 4
            values.append(bytes(payload[offset : offset + size]))
            offset += size
        else:  # pragma: no cover - corrupt payload
            raise CodecError(f"unknown row-codec tag {tag!r}")
    return tuple(values)
