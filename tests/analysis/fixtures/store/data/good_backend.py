"""Fixture backend that honours the whole store contract."""

from repro.data.backends import StoreBackend


class GoodBackend(StoreBackend):
    def __init__(self):
        self._rows = {}

    def add(self, key, tup):
        self._rows.setdefault(key, []).append(tup)

    def match(self, key):
        return list(self._rows.get(key, []))
