"""Workload generation for experiments and examples.

The paper's workload (Section 8): a schema of 10 relations with 10 attributes
each, every attribute drawing from a domain of 100 values; new tuples choose
their relation and attribute values from a Zipf distribution (default
``θ = 0.9``, i.e. highly skewed); queries are random k-way chain joins where
adjacent joins share a relation (default 4-way).

* :class:`~repro.workload.zipf.ZipfSampler` — ranked Zipf sampling,
* :class:`~repro.workload.generator.WorkloadSpec` /
  :class:`~repro.workload.generator.WorkloadGenerator` — schema, query and
  tuple stream generation.
"""

from repro.workload.generator import GeneratedTuple, WorkloadGenerator, WorkloadSpec
from repro.workload.zipf import ZipfSampler

__all__ = ["GeneratedTuple", "WorkloadGenerator", "WorkloadSpec", "ZipfSampler"]
