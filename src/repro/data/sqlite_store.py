"""SQLite-backed tuple store (the ``sqlite`` backend).

A disk-capable implementation of the
:class:`~repro.data.backends.StoreBackend` contract: stored records live in
one SQLite table whose indexes make every hot operation an index scan —

* ``(relation, attribute, value)`` serves the attribute-level prefix match
  (:meth:`SqliteTupleStore.tuples_for_prefix`): canonical two-field prefixes
  resolve to an equality scan on the first two columns,
* ``(pub_time, sequence)`` and ``(sequence)`` serve the two window-expiry
  orders (:meth:`SqliteTupleStore.remove_published_before` /
  :meth:`SqliteTupleStore.remove_sequenced_before`),
* ``(key, pub_time, sequence)`` serves exact-key lookups in publication
  order without re-sorting.

Matching is *set-at-a-time*: a probe batch
(:meth:`SqliteTupleStore.match_batch`) is answered by one compound SQL
statement — an exact-key ``IN`` arm unioned with an attribute-bucket arm
whose identity deduplication happens SQL-side (``GROUP BY rel, sequence``)
— instead of one query plus a Python dedup loop per probe.  Canonical
bucket results are additionally memoised per ``relation SEP attribute SEP``
bucket, maintained incrementally on writes and dropped on deletes (the same
scheme the ``memory`` backend's prefix cache uses), so steady-state probing
costs a dict hit rather than a decode of every matching row.

Tuple values are serialized with the packed row codec
(:mod:`repro.data.rowcodec`): plain scalar rows take the ``struct`` fast
path and anything exotic falls back to a whole-row pickle, so arbitrary
Python values still round-trip exactly (the cross-backend answer-equality
tests rely on this).  Writes are *batched*:
:meth:`SqliteTupleStore.add` only appends to a pending buffer, and the
buffer is flushed inside a single ``executemany`` transaction the first
time a read or removal needs to see it.  Under the engine's batched publish
path (``RJoinEngine.publish_batch``) every tuple fan-out of one network
drain lands in one transaction per node.  Window and sequence GC are single
ranged ``DELETE``\\ s (:meth:`SqliteTupleStore.remove_expired` combines both
cutoffs into one statement).

By default the database lives in memory (``:memory:``); pass a path to put
it on disk and study out-of-core behaviour.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as TupleT

import sqlite3

from repro.data.backends import (
    KEY_PROBE,
    PREFIX_PROBE,
    SEPARATOR,
    StoreBackend,
    StoredTuple,
    bucket_of,
    merge_records,
)
from repro.data.rowcodec import pack_values, unpack_values
from repro.data.tuples import Tuple
from repro.errors import ConfigurationError

_SCHEMA = """
CREATE TABLE records (
    id INTEGER PRIMARY KEY,
    key TEXT NOT NULL,
    relation TEXT,
    attribute TEXT,
    value TEXT,
    rel TEXT NOT NULL,
    sequence INTEGER NOT NULL,
    pub_time REAL NOT NULL,
    stored_at REAL NOT NULL,
    publisher TEXT,
    payload BLOB NOT NULL
);
CREATE INDEX idx_records_key_order ON records (key, pub_time, sequence);
CREATE INDEX idx_records_attr ON records (relation, attribute, value);
CREATE INDEX idx_records_pub ON records (pub_time, sequence);
CREATE INDEX idx_records_seq ON records (sequence);
"""

#: Column list of every record-returning SELECT, in `_record_from_row` order.
_RECORD_COLUMNS = "key, rel, sequence, pub_time, stored_at, publisher, payload"

#: Tuple-only column list of the deduplicating bucket SELECTs.
_TUPLE_COLUMNS = "rel, sequence, pub_time, publisher, payload"

#: Probes per compound-statement chunk; keys cost one SQL parameter each and
#: buckets two, so the worst-case chunk stays far below SQLite's historical
#: 999-parameter floor.
_PROBE_CHUNK = 400

_tuple_order = (lambda t: (t.pub_time, t.sequence))


class SqliteTupleStore(StoreBackend):
    """Key-addressed tuple storage backed by a SQLite table."""

    name = "sqlite"

    def __init__(self, path: str = ":memory:") -> None:
        """``path`` is the database location; the default keeps it in memory."""
        self._conn = sqlite3.connect(path, isolation_level=None)
        # The store is node-local simulation state: durability across a host
        # crash buys nothing here, so trade it for write speed.
        self._conn.execute("PRAGMA synchronous = OFF")
        self._conn.execute("PRAGMA journal_mode = MEMORY")
        self._conn.executescript(_SCHEMA)
        #: INSERT parameter rows buffered until the next read/removal.
        self._pending: List[TupleT] = []
        self._size = 0
        self._stored_total = 0
        # Memoised canonical-bucket results (deduplicated, publication
        # order) plus the identity set backing each list.  Maintained
        # incrementally on add(), popped per bucket on keyed deletes and
        # cleared wholesale on ranged deletes.
        self._bucket_cache: Dict[str, List[Tuple]] = {}
        self._bucket_seen: Dict[str, Set[TupleT[str, int]]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: str, tup: Tuple, now: float) -> StoredTuple:
        """Store ``tup`` under ``key`` and return the stored record."""
        relation = attribute = value = None
        bucket = bucket_of(key)
        if bucket is not None:
            relation, attribute, value = key.split(SEPARATOR, 2)
        self._pending.append(
            (
                key,
                relation,
                attribute,
                value,
                tup.relation,
                tup.sequence,
                tup.pub_time,
                now,
                tup.publisher,
                pack_values(tup.values),
            )
        )
        self._size += 1
        self._stored_total += 1
        if bucket is not None:
            cached = self._bucket_cache.get(bucket)
            if cached is not None:
                self._cache_admit(bucket, cached, tup)
        return StoredTuple(tuple=tup, key=key, stored_at=now)

    def _cache_admit(self, bucket: str, cached: List[Tuple], tup: Tuple) -> None:
        """Fold a fresh write into an already-memoised bucket result."""
        seen = self._bucket_seen[bucket]
        identity = tup.identity
        if identity in seen:
            return
        seen.add(identity)
        if not cached or _tuple_order(cached[-1]) <= _tuple_order(tup):
            cached.append(tup)
        else:
            insort(cached, tup, key=_tuple_order)

    def _drop_bucket(self, key: str) -> None:
        """Invalidate the memoised bucket covering ``key`` (keyed deletes)."""
        if not self._bucket_cache:
            return
        bucket = bucket_of(key)
        if bucket is not None:
            self._bucket_cache.pop(bucket, None)
            self._bucket_seen.pop(bucket, None)

    def _drop_all_buckets(self) -> None:
        self._bucket_cache.clear()
        self._bucket_seen.clear()

    def flush(self) -> None:
        """Write the pending buffer in one ``executemany`` transaction."""
        if not self._pending:
            return
        self._conn.execute("BEGIN")
        self._conn.executemany(
            "INSERT INTO records (key, relation, attribute, value, rel, "
            "sequence, pub_time, stored_at, publisher, payload) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            self._pending,
        )
        self._conn.execute("COMMIT")
        self._pending.clear()

    def _delete(self, sql: str, parameters: TupleT) -> int:
        """Run a DELETE, keep the size counter in step, return the row count."""
        self.flush()
        removed = self._conn.execute(sql, parameters).rowcount
        self._size -= removed
        return removed

    def remove_older_than(self, key: str, cutoff: float) -> int:
        """Drop tuples under ``key`` stored strictly before ``cutoff``."""
        removed = self._delete(
            "DELETE FROM records WHERE key = ? AND stored_at < ?", (key, cutoff)
        )
        if removed:
            self._drop_bucket(key)
        return removed

    def remove_published_before(self, cutoff: float) -> int:
        """Drop every tuple published strictly before ``cutoff``.

        An index range-scan on ``(pub_time, sequence)`` — no Python-side
        bookkeeping is needed because the index *is* the expiry order.
        """
        return self.remove_expired(published_before=cutoff)

    def remove_sequenced_before(self, cutoff: float) -> int:
        """Drop every tuple whose sequence number is strictly below ``cutoff``."""
        return self.remove_expired(sequenced_before=cutoff)

    def remove_expired(
        self,
        published_before: Optional[float] = None,
        sequenced_before: Optional[int] = None,
    ) -> int:
        """Both window-expiry orders as one ranged ``DELETE``."""
        conditions: List[str] = []
        parameters: List[object] = []
        if published_before is not None:
            conditions.append("pub_time < ?")
            parameters.append(published_before)
        if sequenced_before is not None:
            conditions.append("sequence < ?")
            parameters.append(sequenced_before)
        if not conditions:
            return 0
        removed = self._delete(
            "DELETE FROM records WHERE " + " OR ".join(conditions),
            tuple(parameters),
        )
        if removed:
            # A ranged delete can touch any bucket; recomputing the affected
            # set would cost a scan, so drop the whole memo.
            self._drop_all_buckets()
        return removed

    def remove_key(self, key: str) -> List[StoredTuple]:
        """Remove and return every record stored under ``key`` (re-homing)."""
        records = self.records_for_key(key)
        if records:
            self._delete("DELETE FROM records WHERE key = ?", (key,))
            self._drop_bucket(key)
        return records

    def clear(self) -> None:
        """Remove every stored tuple (does not reset cumulative counters)."""
        self._pending.clear()
        self._conn.execute("DELETE FROM records")
        self._drop_all_buckets()
        self._size = 0

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @staticmethod
    def _record_from_row(row: TupleT) -> StoredTuple:
        key, rel, sequence, pub_time, stored_at, publisher, payload = row
        tup = Tuple(
            relation=rel,
            values=unpack_values(payload),
            pub_time=pub_time,
            sequence=sequence,
            publisher=publisher,
        )
        return StoredTuple(tuple=tup, key=key, stored_at=stored_at)

    @staticmethod
    def _tuple_from_row(row: TupleT) -> Tuple:
        rel, sequence, pub_time, publisher, payload = row
        return Tuple(
            relation=rel,
            values=unpack_values(payload),
            pub_time=pub_time,
            sequence=sequence,
            publisher=publisher,
        )

    def _select_records(self, where: str, parameters: TupleT) -> List[StoredTuple]:
        self.flush()
        rows = self._conn.execute(
            f"SELECT {_RECORD_COLUMNS} FROM records WHERE {where} "
            "ORDER BY pub_time, sequence",
            parameters,
        )
        return [self._record_from_row(row) for row in rows]

    def tuples_for_key(self, key: str) -> List[Tuple]:
        """The tuples stored under exactly ``key``, in publication order."""
        return [record.tuple for record in self.records_for_key(key)]

    def records_for_key(self, key: str) -> List[StoredTuple]:
        """The stored records under exactly ``key``, in publication order."""
        return self._select_records("key = ?", (key,))

    def _bucket_tuples(self, prefix: str) -> List[Tuple]:
        """Resolve (and memoise) one canonical bucket through SQL.

        The ``GROUP BY rel, sequence`` performs the identity deduplication
        SQL-side; the bare columns are safe because every row of one
        identity group describes the same publication.
        """
        cached = self._bucket_cache.get(prefix)
        if cached is not None:
            return list(cached)
        relation, attribute = prefix.split(SEPARATOR)[:2]
        self.flush()
        rows = self._conn.execute(
            f"SELECT {_TUPLE_COLUMNS} FROM records "
            "WHERE relation = ? AND attribute = ? "
            "GROUP BY rel, sequence ORDER BY pub_time, sequence",
            (relation, attribute),
        )
        result = [self._tuple_from_row(row) for row in rows]
        self._bucket_cache[prefix] = result
        self._bucket_seen[prefix] = {tup.identity for tup in result}
        return list(result)

    def tuples_for_prefix(self, prefix: str) -> List[Tuple]:
        """Tuples under any key starting with ``prefix`` (deduplicated, ordered).

        Canonical attribute-level prefixes (``relation SEP attribute SEP``)
        hit the bucket memo, or one deduplicating equality scan on the
        ``(relation, attribute, value)`` index; arbitrary prefixes fall back
        to a table scan.
        """
        bucket = bucket_of(prefix)
        if bucket is not None and len(bucket) == len(prefix):
            return self._bucket_tuples(prefix)
        records = self._select_records(
            "substr(key, 1, ?) = ?", (len(prefix), prefix)
        )
        # The SELECT already returns publication order; merge_records only
        # contributes the identity deduplication here.
        return merge_records([records])

    def match_batch(
        self, probes: Sequence[TupleT[str, str]]
    ) -> List[List[Tuple]]:
        """Serve a whole probe batch with one compound SQL statement.

        Exact keys become an ``IN`` arm, canonical buckets an OR-chained
        equality arm with SQL-side dedup; a probe-label column routes each
        row back to its probe in a single ordered pass.  Bucket results
        already memoised are served from the cache, and freshly computed
        ones populate it.  Non-canonical prefixes fall back to the per-probe
        scan path.
        """
        results: List[Optional[List[Tuple]]] = [None] * len(probes)
        key_slots: Dict[str, List[int]] = {}
        bucket_slots: Dict[str, List[int]] = {}
        for index, (kind, text) in enumerate(probes):
            if kind == KEY_PROBE:
                key_slots.setdefault(text, []).append(index)
            elif kind == PREFIX_PROBE:
                bucket = bucket_of(text)
                if bucket is not None and len(bucket) == len(text):
                    cached = self._bucket_cache.get(text)
                    if cached is not None:
                        results[index] = list(cached)
                    else:
                        bucket_slots.setdefault(text, []).append(index)
                else:
                    results[index] = self.tuples_for_prefix(text)
            else:
                raise ConfigurationError(
                    f"unknown probe kind {kind!r}; expected "
                    f"{KEY_PROBE!r} or {PREFIX_PROBE!r}"
                )
        if key_slots or bucket_slots:
            self.flush()
            matched = self._matched_rows(list(key_slots), list(bucket_slots))
            for text, indexes in key_slots.items():
                tuples = matched.get("k" + text, [])
                for index in indexes:
                    results[index] = list(tuples) if len(indexes) > 1 else tuples
            for text, indexes in bucket_slots.items():
                tuples = matched.get("p" + text, [])
                self._bucket_cache[text] = tuples
                self._bucket_seen[text] = {tup.identity for tup in tuples}
                for index in indexes:
                    results[index] = list(tuples)
        return results  # type: ignore[return-value]

    def _matched_rows(
        self, keys: List[str], buckets: List[str]
    ) -> Dict[str, List[Tuple]]:
        """``probe label -> tuples`` for one batch, via compound SELECTs.

        Labels are ``"k" + key`` for exact keys and ``"p" + bucket`` for
        canonical buckets.  Large batches are chunked to stay below SQLite's
        bound-parameter limit.
        """
        matched: Dict[str, List[Tuple]] = {}
        for start in range(0, max(len(keys), len(buckets)), _PROBE_CHUNK):
            key_chunk = keys[start : start + _PROBE_CHUNK]
            bucket_chunk = buckets[start : start + _PROBE_CHUNK]
            arms: List[str] = []
            parameters: List[object] = []
            if key_chunk:
                placeholders = ", ".join("?" * len(key_chunk))
                arms.append(
                    f"SELECT 'k' || key AS probe, {_TUPLE_COLUMNS} "
                    f"FROM records WHERE key IN ({placeholders})"
                )
                parameters.extend(key_chunk)
            if bucket_chunk:
                pairs = " OR ".join(
                    "(relation = ? AND attribute = ?)" for _ in bucket_chunk
                )
                arms.append(
                    "SELECT 'p' || relation || ? || attribute || ? AS probe, "
                    f"{_TUPLE_COLUMNS} FROM records "
                    f"WHERE {pairs} GROUP BY relation, attribute, rel, sequence"
                )
                parameters.append(SEPARATOR)
                parameters.append(SEPARATOR)
                for bucket in bucket_chunk:
                    relation, attribute = bucket.split(SEPARATOR)[:2]
                    parameters.append(relation)
                    parameters.append(attribute)
            statement = (
                " UNION ALL ".join(arms) + " ORDER BY probe, pub_time, sequence"
            )
            for row in self._conn.execute(statement, parameters):
                probe = row[0]
                matched.setdefault(probe, []).append(self._tuple_from_row(row[1:]))
        for bucket in buckets:
            matched.setdefault("p" + bucket, [])
        return matched

    def has_key(self, key: str) -> bool:
        """Return whether any tuple is stored under ``key``."""
        self.flush()
        row = self._conn.execute(
            "SELECT 1 FROM records WHERE key = ? LIMIT 1", (key,)
        ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of currently stored entries (across all keys); O(1)."""
        return self._size

    @property
    def cumulative_stored(self) -> int:
        """Total number of store operations performed over the node's lifetime."""
        return self._stored_total

    def keys(self) -> Iterable[str]:
        """The indexing keys that currently hold tuples."""
        self.flush()
        return [
            row[0]
            for row in self._conn.execute("SELECT DISTINCT key FROM records")
        ]

    def __iter__(self) -> Iterator[StoredTuple]:
        self.flush()
        rows = self._conn.execute(
            f"SELECT {_RECORD_COLUMNS} FROM records ORDER BY key, pub_time, sequence"
        )
        for row in rows:
            yield self._record_from_row(row)

    def distinct_tuples(self) -> int:
        """Number of distinct publications currently stored at this node."""
        self.flush()
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM (SELECT DISTINCT rel, sequence FROM records)"
        ).fetchone()
        return count

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying database connection."""
        self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteTupleStore(size={self._size}, pending={len(self._pending)})"
