"""Fixture protocol vocabulary with seeded completeness gaps."""

from net.messages import Message


class HandledMessage(Message):
    """Dispatched and sent — fully compliant."""

    kind = "handled"


class UnroutedMessage(Message):
    """VIOLATION: sent but never dispatched in RJoinNode.handle_envelope."""

    kind = "unrouted"


class UnsentMessage(Message):
    """VIOLATION: dispatched but never constructed next to a send call."""

    kind = "unsent"
