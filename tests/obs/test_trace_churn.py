"""Trace-context survival under churn (ISSUE satellite: no orphan spans).

Owner-crash failover redirects in-flight answers to the failed-over owner
*without* re-stamping them — the redirected envelope keeps the trace
context it was posted with, so the eventual delivery span still links into
the original trace.  Membership re-homing moves state through ordinary
messages, which must all be stamped like any other traffic.  Both are
checked across every indexing strategy on both runtimes: after arbitrary
churn, every span's parent resolves inside its trace and parent/child hop
depths stay consistent.
"""

from __future__ import annotations

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

STRATEGIES = ("rjoin", "random", "worst", "first")
RUNTIMES = ("sim", "asyncio")


def build(runtime="sim", strategy="rjoin", queries=6, tuples=20, **overrides):
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        seed=77,
    )
    generator = WorkloadGenerator(spec)
    params = dict(
        num_nodes=16,
        seed=7,
        runtime=runtime,
        strategy=strategy,
        observability="on",
    )
    params.update(overrides)
    engine = RJoinEngine(RJoinConfig(**params))
    engine.register_catalog(generator.catalog)
    handles = [engine.submit(q) for q in generator.generate_queries(queries)]
    for generated in generator.generate_tuples(tuples):
        engine.publish(generated.relation, generated.values)
    return generator, engine, handles


def assert_trace_integrity(engine):
    """No orphan spans; parent links are intra-trace and one hop deeper."""
    spans = engine.obs.spans
    assert spans, "churn run recorded no spans"
    by_id = {span.span_id: span for span in spans}
    by_trace = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, set()).add(span.span_id)
    for span in spans:
        if span.parent_id is None:
            continue
        assert span.parent_id in by_trace[span.trace_id], (
            f"orphan span {span.span_id} ({span.name}@{span.node}): parent "
            f"{span.parent_id} missing from trace {span.trace_id}"
        )
        parent = by_id[span.parent_id]
        assert span.hop == parent.hop + 1
    return spans


@pytest.mark.hard_timeout(300)
class TestChurnMatrix:
    """4 strategies × 2 runtimes: crash + graceful churn keep traces whole."""

    @pytest.mark.parametrize("runtime", RUNTIMES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_crash_and_rehoming_leave_no_orphan_spans(self, strategy, runtime):
        generator, engine, handles = build(runtime=runtime, strategy=strategy)
        # Crash a query owner: failover re-registers its queries elsewhere.
        victim = handles[0].owner
        engine.crash_node(victim)
        assert engine.churn.failover_reregistrations > 0
        # Graceful join + leave re-home state through ordinary messages.
        engine.add_node()
        survivor = next(
            address for address in engine.nodes if address != handles[1].owner
        )
        engine.remove_node(survivor)
        for generated in generator.generate_tuples(10):
            engine.publish(generated.relation, generated.values)
        spans = assert_trace_integrity(engine)
        # Post-churn deliveries were stamped too: the trace keeps growing.
        assert sum(handle.count for handle in handles) > 0
        assert {span.node for span in spans} & set(engine.nodes)
        engine.close()


class TestInFlightFailover:
    """The redirected answer keeps its original trace (sim: deterministic)."""

    def test_rerouted_answer_stays_in_its_trace(self):
        from repro.core.protocol import AnswerMessage

        generator, engine, handles = build(queries=8, tuples=30)
        by_id = {handle.query_id: handle for handle in handles}
        # Step the kernel by hand until an answer is in flight towards a
        # remote owner, then crash that owner before the delivery fires
        # (the idiom of test_lifecycle's reroute test).
        target = None
        for generated in generator.generate_tuples(60):
            engine.publish(generated.relation, generated.values, process=False)
            while engine.kernel.pending_events:
                pending = [
                    event.args[0]
                    for event in engine.kernel._heap
                    if not event.cancelled
                    and not event.fired
                    and event.args
                    and hasattr(event.args[0], "message")
                    and isinstance(event.args[0].message, AnswerMessage)
                    and event.args[0].sender != event.args[0].destination
                    and event.args[0].destination in engine.nodes
                ]
                if pending:
                    target = pending[0]
                    break
                engine.kernel.step()
            if target is not None:
                break
        assert target is not None, "workload produced no in-flight answer"
        assert target.trace is not None, "in-flight envelope was not stamped"
        redirected_trace = target.trace.trace_id
        redirected_span = target.trace.span_id
        owner = target.destination
        handle = by_id[target.message.query_id]
        delivered_before = handle.count
        engine.crash_node(owner)
        assert engine.churn.answers_rerouted > 0
        engine.run()
        assert handle.count > delivered_before
        assert handle.owner != owner
        # The redirected delivery opened exactly one span, under the trace
        # the answer was originally posted with — on the *new* owner.
        matches = [
            span
            for span in engine.obs.spans
            if span.trace_id == redirected_trace
            and span.span_id == redirected_span
        ]
        assert len(matches) == 1
        assert matches[0].node == handle.owner
        assert_trace_integrity(engine)
        engine.close()

    def test_dropped_deliveries_are_counted_not_traced(self):
        _, engine, handles = build(queries=4, tuples=10)
        spans_before = len(engine.obs.spans)
        hops_before = sum(s.hops for s in engine.obs.spans)
        # Without churn every routed message has exactly one span: the
        # hop totals replay the transport counter.
        assert hops_before == engine.traffic.total_messages
        engine.crash_node(handles[0].owner)
        engine.run()
        dropped = engine.api.dropped_messages
        counted = engine.obs.registry.counter("dropped_deliveries").value
        # A crash may drop in-flight deliveries; each dropped delivery is
        # counted by the instrument instead of opening a span.
        assert counted <= dropped
        assert len(engine.obs.spans) >= spans_before
        assert_trace_integrity(engine)
        engine.close()
