"""Render a :class:`~repro.sql.ast.Query` back to SQL text.

The formatter is the inverse of :func:`repro.sql.parser.parse_query` for the
supported subset; round-tripping is covered by property-based tests.  It is
also used to display rewritten queries, reproducing the presentation used in
the paper's running example (Figure 1), e.g.::

    SELECT 6, M.A FROM J, M WHERE 6 = J.B AND J.C = M.C
"""

from __future__ import annotations

from typing import List, Union

from repro.data.schema import AttributeRef
from repro.sql.ast import Constant, JoinPredicate, Query, SelectionPredicate


def _format_operand(operand: Union[AttributeRef, Constant]) -> str:
    if isinstance(operand, AttributeRef):
        return f"{operand.relation}.{operand.attribute}"
    value = operand.value
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return str(value)


def _format_predicate(pred: Union[JoinPredicate, SelectionPredicate]) -> str:
    if isinstance(pred, JoinPredicate):
        return f"{_format_operand(pred.left)} = {_format_operand(pred.right)}"
    operand = _format_operand(Constant(pred.value))
    return f"{_format_operand(pred.attribute)} = {operand}"


def format_query(query: Query) -> str:
    """Return SQL text for ``query``."""
    parts: List[str] = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    if query.select_items:
        parts.append(", ".join(_format_operand(item) for item in query.select_items))
    else:
        parts.append("*")
    if query.relations:
        parts.append("FROM")
        parts.append(", ".join(query.relations))
    predicates = [_format_predicate(p) for p in query.predicates()]
    if predicates:
        parts.append("WHERE")
        parts.append(" AND ".join(predicates))
    if query.window is not None:
        parts.append(str(query.window))
    return " ".join(parts)
