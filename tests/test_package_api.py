"""The package's public face: ``repro`` exports, shims and the umbrella CLI.

The API redesign promises three things at the package root:

* every name in ``repro.__all__`` resolves (eagerly or lazily via
  :pep:`562`), and the documented quickstart import works,
* names that moved during the transport extraction keep resolving from
  their old locations — with a :class:`DeprecationWarning`, never silently,
* ``python -m repro`` dispatches to the sub-CLIs while the historical
  direct invocations stay untouched.
"""

from __future__ import annotations

import subprocess
import sys
import warnings

import pytest

import repro
from repro.__main__ import main as umbrella_main


class TestPublicExports:
    def test_every_name_in_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_lazy_exports_are_cached_after_first_access(self):
        value = repro.ExperimentConfig
        assert "ExperimentConfig" in vars(repro)
        assert repro.ExperimentConfig is value

    def test_lazy_exports_point_at_their_home_modules(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        assert repro.ExperimentConfig is ExperimentConfig
        assert repro.run_experiment is run_experiment

    def test_dir_lists_the_public_api(self):
        listing = dir(repro)
        for name in ("RJoinEngine", "run_grid", "make_transport"):
            assert name in listing

    def test_unknown_attribute_raises_attribute_error(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist
        assert not hasattr(repro, "does_not_exist")

    def test_documented_quickstart_works(self):
        engine = repro.RJoinEngine(repro.RJoinConfig(num_nodes=8, seed=1))
        engine.register_relation("R", ["a", "b"])
        engine.register_relation("S", ["c", "d"])
        handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 99))
        assert handle.values() == [(1, 99)]
        engine.close()


class TestDeprecationShims:
    def test_package_event_handle_warns_but_works(self):
        from repro.net.runtime import EventHandle

        with pytest.warns(DeprecationWarning, match="repro.EventHandle"):
            alias = repro.EventHandle
        assert alias is EventHandle

    def test_simulator_event_handle_warns_but_works(self):
        import repro.net.simulator as simulator
        from repro.net.runtime import EventHandle

        with pytest.warns(DeprecationWarning, match="moved to"):
            alias = simulator.EventHandle
        assert alias is EventHandle

    def test_messaging_kernel_property_warns_but_works(self):
        from repro.dht.api import DHTMessagingService
        from repro.dht.chord import ChordRing
        from repro.dht.hashing import IdentifierSpace

        ring = ChordRing.create_network(4, space=IdentifierSpace(16), seed=1)
        service = DHTMessagingService(ring)
        with pytest.warns(DeprecationWarning, match="transport"):
            kernel = service.kernel
        assert kernel is service.transport.kernel

    def test_simulator_unknown_attribute_still_raises(self):
        import repro.net.simulator as simulator

        with pytest.raises(AttributeError, match="no attribute"):
            simulator.nonsense
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # probing must not warn
            assert not hasattr(simulator, "also_nonsense")


class TestUmbrellaCli:
    def test_help_exits_zero(self, capsys):
        assert umbrella_main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "experiments" in out and "analysis" in out

    def test_no_arguments_prints_usage_and_fails(self, capsys):
        assert umbrella_main([]) == 2
        assert "usage:" in capsys.readouterr().out

    def test_unknown_command_fails_with_usage(self, capsys):
        assert umbrella_main(["teleport"]) == 2
        err = capsys.readouterr().err
        assert "unknown command 'teleport'" in err
        assert "usage:" in err

    def test_experiments_subcommand_forwards(self, capsys):
        assert umbrella_main(["experiments", "list"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_analysis_subcommand_forwards(self, capsys):
        assert umbrella_main(["analysis", "list"]) == 0
        assert "determinism-purity" in capsys.readouterr().out

    def test_module_entry_point_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "experiments", "list"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "baseline" in proc.stdout

    def test_direct_invocations_still_work(self):
        for module in ("repro.experiments", "repro.analysis"):
            proc = subprocess.run(
                [sys.executable, "-m", module, "--help"],
                capture_output=True,
                text=True,
            )
            assert proc.returncode == 0, proc.stderr
