"""Trace export: Chrome/Perfetto ``trace_event`` conversion.

The JSONL span stream written by :class:`~repro.obs.trace.JsonlSink` is the
archival format; this module turns it into the Chrome ``trace_event`` JSON
that ``chrome://tracing`` and https://ui.perfetto.dev load directly, so a
simulated run can be inspected on a real timeline: one row ("thread") per
DHT node, one complete event per span, the trace id and hop metadata in
the event ``args``.

Logical time is mapped 1 logical unit -> 1 ms (the ``ts`` field is in
microseconds), which keeps hop delays (default 1.0) readable on the
Perfetto timeline.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.obs.trace import Span

#: Microseconds per logical time unit in the exported timeline.
_US_PER_LOGICAL = 1_000.0


def chrome_trace_events(spans: Sequence[Span]) -> List[Dict[str, object]]:
    """Convert spans to Chrome ``trace_event`` complete events (``ph="X"``).

    Nodes become threads (sorted for a stable layout); zero-duration spans
    are stretched to one microsecond so they stay clickable on the
    timeline.
    """
    tids = {node: tid for tid, node in enumerate(sorted({s.node for s in spans}))}
    # Perfetto names rows via thread_name metadata events.
    events: List[Dict[str, object]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": node},
        }
        for node, tid in tids.items()
    ]
    for span in spans:
        duration = max(span.duration * _US_PER_LOGICAL, 1.0)
        events.append(
            {
                "name": span.name,
                "cat": span.trace_id,
                "ph": "X",
                "pid": 1,
                "tid": tids[span.node],
                "ts": span.start * _US_PER_LOGICAL,
                "dur": duration,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "hop": span.hop,
                    "hops": span.hops,
                    "sent_at": span.sent_at,
                    "wall_us": span.wall_us,
                },
            }
        )
    return events


def write_chrome_trace(spans: Sequence[Span], path: str) -> int:
    """Write spans as a Chrome/Perfetto trace JSON file; returns event count.

    The output is the ``{"traceEvents": [...]}`` object form, which both
    ``chrome://tracing`` and Perfetto accept.
    """
    events = chrome_trace_events(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events}, handle)
    return len(events)
