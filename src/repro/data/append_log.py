"""Append-only log tuple store (the ``append-log`` backend).

A cheap middle point between the fully indexed in-memory ``memory`` backend
and the table-backed ``sqlite`` backend: records are only ever *appended* to
a log (the write path is an O(1) append plus an index insert), deletions are
tombstones, and the log is compacted when garbage collection has killed
enough of it.  This mirrors how log-structured stores behave under the
window-GC pressure the ``store-backends`` scenario applies: steady writes,
bursty deletions, periodic compaction.

Structures:

* ``_log`` — the append-only list of slots (record + alive flag),
* ``_by_key`` — key -> alive log positions, kept in publication order,
* ``_keys_by_prefix`` — the same prefix index the memory backend uses, so
  attribute-level matches touch only the keys of one relation-attribute
  pair,
* two lazy min-heaps over ``(pub_time, position)`` / ``(sequence,
  position)`` driving the window expiries in O(expired · log n),
* compaction: when at least :attr:`AppendLogTupleStore.COMPACT_MIN_DEAD`
  slots are dead *and* the dead fraction reaches half the log, the log is
  rewritten in place (positions are remapped, heaps rebuilt) —
  :attr:`AppendLogTupleStore.compactions` counts the rewrites for the
  benchmark report.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Set, Tuple as TupleT

from repro.data.backends import (
    StoreBackend,
    StoredTuple,
    bucket_of,
    merge_records,
    record_order,
)
from repro.data.tuples import Tuple


@dataclass
class _Slot:
    """One log entry: the stored record plus its tombstone flag."""

    record: StoredTuple
    alive: bool = True


class AppendLogTupleStore(StoreBackend):
    """Key-addressed tuple storage over an append-only record log."""

    name = "append-log"

    #: Compaction never fires below this many dead slots (small stores churn
    #: too fast for a rewrite to pay off).
    COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self._log: List[_Slot] = []
        self._by_key: Dict[str, List[int]] = {}
        self._keys_by_prefix: Dict[str, Set[str]] = {}
        self._unprefixed_keys: Set[str] = set()
        self._identity_counts: Dict[TupleT[str, int], int] = {}
        self._size = 0
        self._stored_total = 0
        self._dead = 0
        #: Number of log rewrites performed so far (benchmark visibility).
        self.compactions = 0
        # Lazy expiry heaps over (clock value, log position); positions are
        # unique so no tiebreak is needed.  Rebuilt on compaction.
        self._time_heap: List[TupleT[float, int]] = []
        self._seq_heap: List[TupleT[int, int]] = []
        self._track_time = False
        self._track_seq = False

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: str, tup: Tuple, now: float) -> StoredTuple:
        """Append ``tup`` to the log and index it under ``key``."""
        record = StoredTuple(tuple=tup, key=key, stored_at=now)
        position = len(self._log)
        self._log.append(_Slot(record=record))
        positions = self._by_key.get(key)
        if positions is None:
            self._by_key[key] = [position]
            bucket = bucket_of(key)
            if bucket is None:
                self._unprefixed_keys.add(key)
            else:
                self._keys_by_prefix.setdefault(bucket, set()).add(key)
        elif record_order(record) >= record_order(self._log[positions[-1]].record):
            positions.append(position)
        else:
            insort(
                positions,
                position,
                key=lambda p: record_order(self._log[p].record),
            )
        self._size += 1
        self._stored_total += 1
        identity = tup.identity
        self._identity_counts[identity] = self._identity_counts.get(identity, 0) + 1
        if self._track_time:
            heapq.heappush(self._time_heap, (tup.pub_time, position))
        if self._track_seq:
            heapq.heappush(self._seq_heap, (tup.sequence, position))
        return record

    def _drop_key(self, key: str) -> None:
        """Remove an emptied key from the dictionary and the prefix index."""
        del self._by_key[key]
        bucket = bucket_of(key)
        if bucket is None:
            self._unprefixed_keys.discard(key)
        else:
            keys = self._keys_by_prefix.get(bucket)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._keys_by_prefix[bucket]

    def _kill(self, position: int, unindex: bool = True) -> None:
        """Tombstone the slot at ``position`` (must be alive)."""
        slot = self._log[position]
        slot.alive = False
        self._dead += 1
        self._size -= 1
        identity = slot.record.tuple.identity
        count = self._identity_counts[identity] - 1
        if count:
            self._identity_counts[identity] = count
        else:
            del self._identity_counts[identity]
        if unindex:
            key = slot.record.key
            positions = self._by_key[key]
            positions.remove(position)
            if not positions:
                self._drop_key(key)

    def _ensure_time_heap(self) -> None:
        if self._track_time:
            return
        self._track_time = True
        self._time_heap = [
            (slot.record.tuple.pub_time, position)
            for position, slot in enumerate(self._log)
            if slot.alive
        ]
        heapq.heapify(self._time_heap)

    def _ensure_seq_heap(self) -> None:
        if self._track_seq:
            return
        self._track_seq = True
        self._seq_heap = [
            (slot.record.tuple.sequence, position)
            for position, slot in enumerate(self._log)
            if slot.alive
        ]
        heapq.heapify(self._seq_heap)

    def _expire(self, heap: List[TupleT], cutoff) -> int:
        """Tombstone every alive position the heap reports below ``cutoff``."""
        removed = 0
        while heap and heap[0][0] < cutoff:
            _, position = heapq.heappop(heap)
            if self._log[position].alive:
                self._kill(position)
                removed += 1
        if removed:
            self._maybe_compact()
        return removed

    def remove_older_than(self, key: str, cutoff: float) -> int:
        """Drop tuples under ``key`` stored strictly before ``cutoff``."""
        positions = self._by_key.get(key)
        if not positions:
            return 0
        expired = [
            p for p in positions if self._log[p].record.stored_at < cutoff
        ]
        for position in expired:
            self._kill(position)
        if expired:
            self._maybe_compact()
        return len(expired)

    def remove_published_before(self, cutoff: float) -> int:
        """Drop every tuple published strictly before ``cutoff``."""
        self._ensure_time_heap()
        return self._expire(self._time_heap, cutoff)

    def remove_sequenced_before(self, cutoff: float) -> int:
        """Drop every tuple whose sequence number is strictly below ``cutoff``."""
        self._ensure_seq_heap()
        return self._expire(self._seq_heap, cutoff)

    def remove_key(self, key: str) -> List[StoredTuple]:
        """Remove and return every record stored under ``key`` (re-homing)."""
        positions = self._by_key.get(key)
        if not positions:
            return []
        records = [self._log[p].record for p in positions]
        for position in positions:
            self._kill(position, unindex=False)
        self._drop_key(key)
        self._maybe_compact()
        return records

    def clear(self) -> None:
        """Remove every stored tuple (does not reset cumulative counters)."""
        self._log.clear()
        self._by_key.clear()
        self._keys_by_prefix.clear()
        self._unprefixed_keys.clear()
        self._identity_counts.clear()
        self._time_heap.clear()
        self._seq_heap.clear()
        self._size = 0
        self._dead = 0

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        if self._dead >= self.COMPACT_MIN_DEAD and self._dead * 2 >= len(self._log):
            self._compact()

    def _compact(self) -> None:
        """Rewrite the log without tombstones, remapping every position."""
        mapping: Dict[int, int] = {}
        compacted: List[_Slot] = []
        for position, slot in enumerate(self._log):
            if slot.alive:
                mapping[position] = len(compacted)
                compacted.append(slot)
        self._log = compacted
        self._by_key = {
            key: [mapping[p] for p in positions]
            for key, positions in self._by_key.items()
        }
        if self._track_time:
            self._time_heap = [
                (slot.record.tuple.pub_time, position)
                for position, slot in enumerate(self._log)
            ]
            heapq.heapify(self._time_heap)
        if self._track_seq:
            self._seq_heap = [
                (slot.record.tuple.sequence, position)
                for position, slot in enumerate(self._log)
            ]
            heapq.heapify(self._seq_heap)
        self._dead = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def tuples_for_key(self, key: str) -> List[Tuple]:
        """The tuples stored under exactly ``key``, in publication order."""
        return [
            self._log[p].record.tuple for p in self._by_key.get(key, [])
        ]

    def records_for_key(self, key: str) -> List[StoredTuple]:
        """The stored records under exactly ``key``, in publication order."""
        return [self._log[p].record for p in self._by_key.get(key, [])]

    def tuples_for_prefix(self, prefix: str) -> List[Tuple]:
        """Tuples under any key starting with ``prefix`` (deduplicated, ordered)."""
        bucket = bucket_of(prefix)
        if bucket is not None and len(bucket) == len(prefix):
            keys: Iterable[str] = self._keys_by_prefix.get(prefix) or ()
        else:
            keys = [key for key in self._by_key if key.startswith(prefix)]
        lists = [self.records_for_key(key) for key in keys]
        if not lists:
            return []
        return merge_records(lists)

    def has_key(self, key: str) -> bool:
        """Return whether any tuple is stored under ``key``."""
        return key in self._by_key

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of currently stored entries (across all keys); O(1)."""
        return self._size

    @property
    def cumulative_stored(self) -> int:
        """Total number of store operations performed over the node's lifetime."""
        return self._stored_total

    def keys(self) -> Iterable[str]:
        """Iterate over the indexing keys that currently hold tuples."""
        return self._by_key.keys()

    def __iter__(self) -> Iterator[StoredTuple]:
        for positions in self._by_key.values():
            for position in positions:
                yield self._log[position].record

    def distinct_tuples(self) -> int:
        """Number of distinct publications currently stored at this node; O(1)."""
        return len(self._identity_counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AppendLogTupleStore(size={self._size}, log={len(self._log)}, "
            f"dead={self._dead}, compactions={self.compactions})"
        )
