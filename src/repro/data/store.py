"""Per-node local tuple storage (the default ``memory`` backend).

Every RJoin node stores tuples it receives *at the value level* so that
rewritten queries arriving later can still be matched against them
(Procedure 2 and 3 of the paper).  The attribute-level tuple table (ALTT) of
Section 4 reuses the same structure with an expiry time (see
:mod:`repro.core.altt`).

The store is a mapping ``indexing key -> list of stored tuples``.  It also
maintains aggregate counters that feed the storage-load metric of the
experimental section: the *storage load* of a node is the number of rewritten
queries plus the number of tuples that the node has to store locally.

:class:`TupleStore` is one of several implementations of the
:class:`~repro.data.backends.StoreBackend` contract (see
:func:`repro.data.backends.make_store` for the registry).  Three auxiliary
structures keep the hot paths off O(total-keys) scans:

* a *prefix index* (``relation + attribute -> set of value keys``) so that
  attribute-level lookups (:meth:`TupleStore.tuples_for_prefix`) only touch
  the keys of the requested relation-attribute pair,
* per-key record lists kept ordered by ``(pub_time, sequence)`` so callers
  consume tuples in publication order without re-sorting,
* min-heaps over publication time and sequence number so window garbage
  collection (:meth:`TupleStore.remove_published_before`,
  :meth:`TupleStore.remove_sequenced_before`) costs O(expired · log n)
  instead of a full re-scan of every stored record.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from typing import Dict, Iterable, Iterator, List, Set, Tuple as TupleT

from repro.data.backends import (
    SEPARATOR as _SEPARATOR,  # noqa: F401  (re-exported for compatibility)
    StoreBackend,
    StoredTuple,
    bucket_of as _bucket_of,
    merge_records,
    record_order as _record_order,
)
from repro.data.tuples import Tuple

__all__ = ["StoredTuple", "TupleStore"]


class TupleStore(StoreBackend):
    """Key-addressed in-memory storage for published tuples.

    The store intentionally keeps one entry per ``(key, tuple identity)``
    pair: the same publication indexed under two different keys at the same
    node occupies two slots (it costs storage twice), which matches how the
    paper counts storage load, while lookups that span several keys can
    deduplicate through :meth:`tuples_for_prefix`.
    """

    name = "memory"

    def __init__(self) -> None:
        self._by_key: Dict[str, List[StoredTuple]] = {}
        self._keys_by_prefix: Dict[str, Set[str]] = {}
        self._unprefixed_keys: Set[str] = set()
        # Memoised tuples_for_prefix results per canonical bucket, dropped
        # whenever any key of the bucket is touched.
        self._prefix_cache: Dict[str, List[Tuple]] = {}
        self._stored_total = 0  # cumulative number of store operations
        self._size = 0
        self._identity_counts: Dict[TupleT[str, int], int] = {}
        # Lazy expiry queues: (clock value, tiebreak, key).  Each heap is
        # first materialised when the matching removal method is called, and
        # maintained incrementally from then on.  Entries are not removed
        # when records leave through other paths; stale entries pop
        # harmlessly because removal re-checks the affected key.
        self._time_heap: List[TupleT[float, int, str]] = []
        self._seq_heap: List[TupleT[int, int, str]] = []
        self._track_time = False
        self._track_seq = False
        self._tiebreak = itertools.count()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: str, tup: Tuple, now: float) -> StoredTuple:
        """Store ``tup`` under ``key`` and return the stored record."""
        record = StoredTuple(tuple=tup, key=key, stored_at=now)
        bucket = _bucket_of(key)
        if bucket is not None and self._prefix_cache:
            self._prefix_cache.pop(bucket, None)
        records = self._by_key.get(key)
        if records is None:
            self._by_key[key] = [record]
            if bucket is None:
                self._unprefixed_keys.add(key)
            else:
                self._keys_by_prefix.setdefault(bucket, set()).add(key)
        elif _record_order(record) >= _record_order(records[-1]):
            records.append(record)
        else:
            insort(records, record, key=_record_order)
        self._stored_total += 1
        self._size += 1
        identity = tup.identity
        self._identity_counts[identity] = self._identity_counts.get(identity, 0) + 1
        if self._track_time:
            heapq.heappush(
                self._time_heap, (tup.pub_time, next(self._tiebreak), key)
            )
        if self._track_seq:
            heapq.heappush(
                self._seq_heap, (tup.sequence, next(self._tiebreak), key)
            )
        return record

    def _forget(self, record: StoredTuple) -> None:
        """Release the aggregate counters held by ``record``."""
        self._size -= 1
        identity = record.tuple.identity
        count = self._identity_counts[identity] - 1
        if count:
            self._identity_counts[identity] = count
        else:
            del self._identity_counts[identity]

    def _invalidate_prefix(self, key: str) -> None:
        """Drop the memoised prefix lookup covering ``key``."""
        if not self._prefix_cache:
            return
        bucket = _bucket_of(key)
        if bucket is not None:
            self._prefix_cache.pop(bucket, None)

    def _drop_key(self, key: str) -> None:
        """Remove an emptied key from the dictionary and the prefix index."""
        del self._by_key[key]
        bucket = _bucket_of(key)
        if bucket is None:
            self._unprefixed_keys.discard(key)
        else:
            keys = self._keys_by_prefix.get(bucket)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._keys_by_prefix[bucket]

    def remove_older_than(self, key: str, cutoff: float) -> int:
        """Drop tuples under ``key`` stored strictly before ``cutoff``.

        Returns the number of removed entries.  Used by window-based state
        reduction and by tests; expiry sweeps over the whole store should use
        :meth:`remove_published_before` / :meth:`remove_sequenced_before`.
        """
        records = self._by_key.get(key)
        if not records:
            return 0
        kept = [r for r in records if r.stored_at >= cutoff]
        removed = len(records) - len(kept)
        if not removed:
            return 0
        for record in records:
            if record.stored_at < cutoff:
                self._forget(record)
        self._invalidate_prefix(key)
        if kept:
            self._by_key[key] = kept
        else:
            self._drop_key(key)
        return removed

    def _expired_keys(self, heap: List, cutoff: float) -> Set[str]:
        """Pop heap entries below ``cutoff``; return the touched keys."""
        affected: Set[str] = set()
        while heap and heap[0][0] < cutoff:
            affected.add(heapq.heappop(heap)[2])
        return affected

    def _ensure_time_heap(self) -> None:
        """Materialise the publication-time expiry heap on first use."""
        if self._track_time:
            return
        self._track_time = True
        tiebreak = self._tiebreak
        self._time_heap = [
            (record.tuple.pub_time, next(tiebreak), record.key) for record in self
        ]
        heapq.heapify(self._time_heap)

    def _ensure_seq_heap(self) -> None:
        """Materialise the sequence-number expiry heap on first use."""
        if self._track_seq:
            return
        self._track_seq = True
        tiebreak = self._tiebreak
        self._seq_heap = [
            (record.tuple.sequence, next(tiebreak), record.key) for record in self
        ]
        heapq.heapify(self._seq_heap)

    def remove_published_before(self, cutoff: float) -> int:
        """Drop every tuple whose publication time is strictly before ``cutoff``.

        Runs in O(expired · log n): the expiry heap names the keys holding
        expired records, and publication order within each key list makes the
        expired records a prefix, so the scan only ever touches records that
        are actually removed.
        """
        self._ensure_time_heap()
        removed = 0
        for key in self._expired_keys(self._time_heap, cutoff):
            records = self._by_key.get(key)
            if not records:
                continue
            index = 0
            length = len(records)
            while index < length and records[index].tuple.pub_time < cutoff:
                self._forget(records[index])
                index += 1
            if index == 0:
                continue
            removed += index
            self._invalidate_prefix(key)
            if index == length:
                self._drop_key(key)
            else:
                del records[:index]
        return removed

    def remove_sequenced_before(self, cutoff: float) -> int:
        """Drop every tuple whose sequence number is strictly below ``cutoff``.

        The tuple-based window analogue of :meth:`remove_published_before`.
        Sequence numbers need not follow publication order within a key, so
        affected keys are re-filtered rather than prefix-cut.
        """
        self._ensure_seq_heap()
        removed = 0
        for key in self._expired_keys(self._seq_heap, cutoff):
            records = self._by_key.get(key)
            if not records:
                continue
            kept = [r for r in records if r.tuple.sequence >= cutoff]
            dropped = len(records) - len(kept)
            if not dropped:
                continue
            for record in records:
                if record.tuple.sequence < cutoff:
                    self._forget(record)
            removed += dropped
            self._invalidate_prefix(key)
            if kept:
                self._by_key[key] = kept
            else:
                self._drop_key(key)
        return removed

    def remove_key(self, key: str) -> List[StoredTuple]:
        """Remove and return every record stored under ``key`` (id movement)."""
        records = self._by_key.get(key)
        if not records:
            return []
        for record in records:
            self._forget(record)
        self._invalidate_prefix(key)
        self._drop_key(key)
        return records

    def clear(self) -> None:
        """Remove every stored tuple (does not reset cumulative counters)."""
        self._by_key.clear()
        self._keys_by_prefix.clear()
        self._unprefixed_keys.clear()
        self._prefix_cache.clear()
        self._identity_counts.clear()
        self._time_heap.clear()
        self._seq_heap.clear()
        self._size = 0

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def tuples_for_key(self, key: str) -> List[Tuple]:
        """The tuples stored under exactly ``key``, in publication order."""
        return [r.tuple for r in self._by_key.get(key, [])]

    def records_for_key(self, key: str) -> List[StoredTuple]:
        """The stored records under exactly ``key``, in publication order."""
        return list(self._by_key.get(key, []))

    def tuples_for_prefix(self, prefix: str) -> List[Tuple]:
        """Return tuples stored under any key starting with ``prefix``.

        Used when a rewritten query indexed at the *attribute level* needs to
        scan every locally stored tuple of a relation-attribute pair
        regardless of the value component of the key.  Results are
        deduplicated by tuple identity and sorted by ``(pub_time, sequence)``.
        Canonical attribute-level prefixes hit the prefix index (and a result
        memo invalidated on writes) instead of scanning every stored key.
        """
        bucket = _bucket_of(prefix)
        if bucket is not None and len(bucket) == len(prefix):
            # Canonical two-field prefix (``relation SEP attribute SEP``):
            # every matching key lives exactly in this bucket.
            cached = self._prefix_cache.get(prefix)
            if cached is not None:
                return list(cached)
            keys = self._keys_by_prefix.get(prefix)
            if not keys:
                return []
            result = merge_records([self._by_key[key] for key in keys])
            self._prefix_cache[prefix] = result
            return list(result)
        # Arbitrary prefix: fall back to scanning every key.
        lists = [
            records
            for key, records in self._by_key.items()
            if key.startswith(prefix)
        ]
        if not lists:
            return []
        return merge_records(lists)

    def has_key(self, key: str) -> bool:
        """Return whether any tuple is stored under ``key``."""
        return key in self._by_key

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of currently stored entries (across all keys); O(1)."""
        return self._size

    @property
    def cumulative_stored(self) -> int:
        """Total number of store operations performed over the node's lifetime."""
        return self._stored_total

    def keys(self) -> Iterable[str]:
        """Iterate over the indexing keys that currently hold tuples."""
        return self._by_key.keys()

    def __iter__(self) -> Iterator[StoredTuple]:
        for records in self._by_key.values():
            yield from records

    def distinct_tuples(self) -> int:
        """Number of distinct publications currently stored at this node; O(1)."""
        return len(self._identity_counts)
