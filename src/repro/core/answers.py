"""Answer collection on the querying side.

Answers are produced wherever a rewritten query's where clause becomes
equivalent to ``true`` and are shipped directly to the node that submitted
the input query.  The engine exposes them to library users through
:class:`QueryHandle`: one handle per submitted continuous query, accumulating
:class:`Answer` records as the simulation progresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple as TupleT

from repro.sql.ast import Query


@dataclass(frozen=True)
class Answer:
    """One answer of a continuous query."""

    query_id: str
    values: TupleT[Any, ...]
    produced_at: float
    delivered_at: float
    producer: str


@dataclass
class QueryHandle:
    """The client-side view of a submitted continuous query."""

    query_id: str
    query: Query
    owner: str
    insertion_time: float
    answers: List[Answer] = field(default_factory=list)

    # ------------------------------------------------------------------
    # collection (used by the engine)
    # ------------------------------------------------------------------
    def add_answer(self, answer: Answer) -> None:
        """Record a delivered answer."""
        self.answers.append(answer)

    # ------------------------------------------------------------------
    # inspection (used by library users)
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of answers delivered so far."""
        return len(self.answers)

    def values(self) -> List[TupleT[Any, ...]]:
        """The answer value tuples, in delivery order (bag semantics)."""
        return [answer.values for answer in self.answers]

    def distinct_values(self) -> Set[TupleT[Any, ...]]:
        """The set of distinct answer value tuples."""
        return set(self.values())

    def latest(self) -> Optional[Answer]:
        """The most recently delivered answer, if any."""
        return self.answers[-1] if self.answers else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryHandle({self.query_id}, answers={self.count}, "
            f"query={self.query})"
        )
