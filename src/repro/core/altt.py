"""Attribute-level tuple table (ALTT) — Section 4.

Without further care RJoin can lose answers when messages are delayed: a
tuple may reach the attribute-level node *before* the input query that it
should trigger.  The paper's fix is local: every node keeps tuples received
at the attribute level in a dedicated table (the ALTT) for ``Δ`` time units,
and whenever an input query arrives the node first searches the ALTT for
matching tuples published at or after the query's insertion time.

``Δ`` may be infinite (tuples are never discarded — also useful to support
one-time queries), or an overestimate of the maximum message transit time,
which is what the eventual-completeness theorem requires.  The engine derives
a default Δ from the messaging service's bounded per-hop delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.tuples import Tuple


@dataclass
class _AlttEntry:
    tuple: Tuple
    received_at: float


class AttributeLevelTupleTable:
    """Per-node table of recently received attribute-level tuples."""

    def __init__(self, delta: Optional[float] = None):
        """``delta`` is the retention time Δ; ``None`` means keep forever."""
        self.delta = delta
        self._by_key: Dict[str, List[_AlttEntry]] = {}
        self._stored_total = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key_text: str, tup: Tuple, now: float) -> None:
        """Remember that ``tup`` arrived at attribute-level key ``key_text``."""
        self._by_key.setdefault(key_text, []).append(
            _AlttEntry(tuple=tup, received_at=now)
        )
        self._stored_total += 1

    def expire(self, now: float) -> int:
        """Drop entries older than Δ; returns the number of removed entries."""
        if self.delta is None:
            return 0
        cutoff = now - self.delta
        removed = 0
        for key in list(self._by_key.keys()):
            entries = self._by_key[key]
            kept = [entry for entry in entries if entry.received_at >= cutoff]
            removed += len(entries) - len(kept)
            if kept:
                self._by_key[key] = kept
            else:
                del self._by_key[key]
        return removed

    def clear(self) -> None:
        """Remove every entry."""
        self._by_key.clear()

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def find(
        self,
        key_text: str,
        now: float,
        published_at_or_after: Optional[float] = None,
    ) -> List[Tuple]:
        """Tuples under ``key_text`` that are still retained and recent enough.

        ``published_at_or_after`` filters on the publication time, matching
        the trigger condition ``pubT(t) ≥ insT(q)``.
        """
        entries = self._by_key.get(key_text, [])
        cutoff = None if self.delta is None else now - self.delta
        result: List[Tuple] = []
        for entry in entries:
            if cutoff is not None and entry.received_at < cutoff:
                continue
            if (
                published_at_or_after is not None
                and entry.tuple.pub_time < published_at_or_after
            ):
                continue
            result.append(entry.tuple)
        return result

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_key.values())

    @property
    def cumulative_stored(self) -> int:
        """Total number of tuples ever added to the table."""
        return self._stored_total
